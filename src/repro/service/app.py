"""The resident analysis service behind ``repro serve``.

:class:`AnalysisService` wraps the batch pipeline
(:func:`repro.pipeline.run_pipeline`) into a long-lived, thread-safe
request handler.  Three things make it a service rather than a loop
around the CLI:

* **a persistent worker pool** — one :class:`repro.pipeline.WorkerPool`
  survives across requests, so a request pays for analysis, never for
  process startup (the pool is pre-forked before the first request);
* **a two-tier cache** — a bounded in-memory LRU
  (:class:`repro.pipeline.MemoryLRU`) in front of the on-disk
  content-addressed store, keyed by the same ``cache_key``; a warm hit
  is served without touching the pool at all;
* **request coalescing** — concurrent identical submissions (same
  canonical programs, analyses, and config) share one computation and
  all receive its result;
* **admission control** — a bounded admission gauge (429 with a
  ``Retry-After`` hint once ``in_flight + waiting`` would exceed
  ``max_queue``) and optional per-tenant token-bucket rate limits
  (:class:`repro.observe.TokenBucket`, keyed by the transport's
  ``X-Repro-Tenant`` header), so overload degrades into cheap explicit
  refusals instead of an unbounded thread pile-up;
* **sharded worker pools** — ``shards > 1`` splits the workers into
  independent pools routed by coalescing-key hash, so one heavy
  request stream cannot head-of-line-block every other key.

The response contract is strict: for any (program, analyses, config)
the ``POST /analyze`` body is byte-identical to the ``repro batch
--json`` document for the same inputs — the service is a cache+pool in
front of the pipeline, never a different pipeline.  Deadlines degrade
(partial results flagged ``degraded``), they do not 500; see
``docs/service.md`` for the endpoint schema and the shutdown/drain
behaviour.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple

import repro
from repro.lang.parser import parse_program, parse_statement
from repro.lang.pretty import pretty
from repro.lang.validate import validate_program
from repro.observe import MetricsAggregator, TokenBucket
from repro.pipeline import (
    ANALYSES,
    DEFAULT_CONFIG,
    MemoryLRU,
    ResultCache,
    TieredCache,
    WorkerPool,
    run_pipeline,
)

#: Default analyses when a request names none — the same default as
#: ``repro batch``.
DEFAULT_ANALYSES: Tuple[str, ...] = ("cert", "lint")

#: Cap on request body size (bytes); a guard, not a tuning knob.
MAX_REQUEST_BYTES = 4 * 1024 * 1024

#: Per-cell item records the resident metrics aggregator retains (the
#: cumulative ``run``/``analyses`` aggregates are exact regardless).
SERVICE_ITEM_RECORDS = 2048

#: Tenant name used when the transport supplies none.
DEFAULT_TENANT = "default"

#: Tenants tracked individually before new names fold into one
#: overflow bucket — the tenant header is client-controlled, so the
#: registry must not grow without bound.
MAX_TENANTS = 1024

#: Where requests beyond :data:`MAX_TENANTS` distinct tenants land.
OVERFLOW_TENANT = "(overflow)"

#: ``Retry-After`` hint (seconds) for a busy rejection.  Capacity
#: frees when an in-flight analysis finishes, which the service cannot
#: price per-request; one second is the polling cadence we want
#: well-behaved clients to adopt.
RETRY_AFTER_BUSY = 1


class ServiceError(Exception):
    """A request the service rejects (HTTP 4xx), with a clean message."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _error_body(message: str, status: int) -> bytes:
    document = {"error": message, "status": status}
    return (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")


class AnalysisService:
    """The request-level core of ``repro serve`` (transport-agnostic).

    The HTTP layer (:mod:`repro.service.httpd`) owns sockets and
    signals; everything about *analysis* — parsing requests, the cache
    tiers, the pool, coalescing, metrics — lives here, which is what
    the test suite drives directly.

    ``jobs=1`` runs analyses in-process (no pool); ``jobs > 1`` keeps
    persistent pre-forked pools — ``shards`` of them, each with
    ``ceil(jobs / shards)`` workers, with requests routed by
    coalescing-key hash so a heavy key saturates one shard, not all of
    them.  ``cache_dir=None`` disables the disk tier, ``lru_capacity=0``
    the memory tier; with both disabled every request recomputes.
    ``default_deadline`` applies to requests that do not set
    ``config.deadline`` themselves (``None`` = unlimited).
    ``default_config`` entries back-fill request configs the same way
    (per-request values always win) — ``repro serve --no-fastpath``
    passes ``{"fastpath": False}`` through it.

    Admission: ``max_queue`` bounds ``in_flight + waiting`` (leaders
    running the pipeline plus admitted requests parsing or waiting on a
    coalesced future); a request over the bound is a 429, never a
    queued thread.  ``tenant_rps`` (with ``tenant_burst``, default
    ``max(1, tenant_rps)``) enables one :class:`TokenBucket` per tenant.
    """

    def __init__(
        self,
        jobs: int = 2,
        cache_dir: Optional[str] = None,
        lru_capacity: int = 4096,
        default_deadline: Optional[float] = None,
        default_config: Optional[dict] = None,
        chunk_size: Optional[int] = None,
        shards: int = 1,
        max_queue: int = 64,
        tenant_rps: Optional[float] = None,
        tenant_burst: Optional[float] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if tenant_rps is not None and tenant_rps <= 0:
            raise ValueError(f"tenant_rps must be > 0, got {tenant_rps}")
        self.jobs = jobs
        # Sharding splits the *pool*; without one there is nothing to
        # split and every request runs in-process on its own thread.
        self.shards = shards if jobs > 1 else 1
        self.chunk_size = chunk_size
        self.default_deadline = default_deadline
        self.default_config = dict(default_config or {})
        per_shard = -(-jobs // self.shards)  # ceil: never a 0-worker shard
        self.pools: List[WorkerPool] = (
            [
                WorkerPool(per_shard, label=f"shard-{i}")
                for i in range(self.shards)
            ]
            if jobs > 1
            else []
        )
        disk = ResultCache(cache_dir) if cache_dir else None
        if disk is None and lru_capacity == 0:
            self.cache: Optional[TieredCache] = None
        else:
            self.cache = TieredCache(disk, MemoryLRU(lru_capacity))
        self.observer = MetricsAggregator(max_items=SERVICE_ITEM_RECORDS)
        self.draining = False
        self.started_at = time.monotonic()
        self.requests = 0
        self.coalesced = 0
        self.rejected = 0
        self.in_flight = 0
        #: Admitted requests *not* currently running the pipeline:
        #: leaders still parsing/routing plus coalesced followers
        #: blocked on another leader's future.  The drain joins these
        #: threads too, so they are first-class in every snapshot.
        self.waiting = 0
        self.max_queue = max_queue
        self.tenant_rps = tenant_rps
        self.tenant_burst = tenant_burst
        self.admission: Dict[str, int] = {
            "admitted": 0,
            "rejected_busy": 0,
            "rate_limited": 0,
            "aborted": 0,
        }
        self.tenants: Dict[str, Dict[str, int]] = {}
        self.client_disconnects = 0
        self.body_bytes_read = 0
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}

    # -- lifecycle -----------------------------------------------------

    def warm(self) -> None:
        """Pre-fork every shard's workers (before serving threads exist)."""
        for pool in self.pools:
            pool.warm(self.observer)

    def begin_drain(self) -> None:
        """Refuse new work; in-flight requests run to completion."""
        with self._lock:
            self.draining = True

    def close(self) -> None:
        """Tear down the worker pools."""
        for pool in self.pools:
            pool.close()

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The first shard's pool (the whole pool when ``shards == 1``)."""
        return self.pools[0] if self.pools else None

    # -- request handling ---------------------------------------------

    def analyze_json(self, raw: bytes, tenant: Optional[str] = None) -> Tuple[int, bytes]:
        """Handle one ``POST /analyze`` body; returns (status, body).

        Malformed requests are 400s with a JSON error document; valid
        requests always produce the deterministic pipeline document —
        a per-request deadline yields ``degraded``-flagged partial
        results inside a 200, never a 500.  The headers-free wrapper
        around :meth:`analyze_request` for callers (and tests) that do
        not care about ``Retry-After``.
        """
        status, body, _headers = self.analyze_request(raw, tenant=tenant)
        return status, body

    def analyze_request(
        self, raw: bytes, tenant: Optional[str] = None
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Full front-line path: returns (status, body, extra headers).

        Order of refusal (each is cheap and happens *before* any
        pipeline work): 413 oversized body, 429 per-tenant rate limit
        (``Retry-After`` = seconds until the bucket refills), 429
        admission bound (``in_flight + waiting`` would exceed
        ``max_queue``), 400 malformed request.  Only an admitted,
        validated request reaches the coalescing map and the pool.
        """
        tenant_name = tenant or DEFAULT_TENANT
        with self._lock:
            self.requests += 1
            tenant_name, record = self._tenant_record_locked(tenant_name)
            record["requests"] += 1
        if len(raw) > MAX_REQUEST_BYTES:
            status, body = self._reject(
                f"request body exceeds {MAX_REQUEST_BYTES} bytes", 413
            )
            return status, body, {}
        if self.tenant_rps is not None:
            bucket = self._bucket(tenant_name)
            if not bucket.try_acquire():
                retry = max(1, int(bucket.retry_after() + 0.999))
                with self._lock:
                    self.rejected += 1
                    self.admission["rate_limited"] += 1
                    self.tenants[tenant_name]["rate_limited"] += 1
                return (
                    429,
                    _error_body(
                        f"tenant {tenant_name!r} over rate limit", 429
                    ),
                    {"Retry-After": str(retry)},
                )
        with self._lock:
            if self.in_flight + self.waiting >= self.max_queue:
                self.rejected += 1
                self.admission["rejected_busy"] += 1
                return (
                    429,
                    _error_body(
                        f"service at capacity ({self.max_queue} admitted)",
                        429,
                    ),
                    {"Retry-After": str(RETRY_AFTER_BUSY)},
                )
            self.admission["admitted"] += 1
            self.waiting += 1
        try:
            status, body = self._admitted(raw)
        finally:
            with self._lock:
                self.waiting -= 1
        return status, body, {}

    def _admitted(self, raw: bytes) -> Tuple[int, bytes]:
        """Parse, coalesce, and run one admitted request body."""
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return self._reject("request body is not valid JSON", 400)
        try:
            corpus, analyses, config = self._parse_request(request)
        except ServiceError as exc:
            return self._reject(str(exc), exc.status)

        key = self._coalescing_key(corpus, analyses, config)
        with self._lock:
            future = self._inflight.get(key)
            leader = future is None
            if leader:
                future = Future()
                self._inflight[key] = future
            else:
                self.coalesced += 1
        if leader:
            try:
                outcome = self._run(corpus, analyses, config, key)
            except BaseException:
                # never leave followers hanging on a dead future
                outcome = (500, _error_body("internal service error", 500))
                future.set_result(outcome)
                with self._lock:
                    self._inflight.pop(key, None)
                raise
            future.set_result(outcome)
            with self._lock:
                self._inflight.pop(key, None)
        return future.result()

    def _reject(self, message: str, status: int) -> Tuple[int, bytes]:
        with self._lock:
            self.rejected += 1
        return status, _error_body(message, status)

    def _tenant_record_locked(
        self, name: str
    ) -> Tuple[str, Dict[str, int]]:
        """Resolve a tenant's counter record (caller holds ``_lock``).

        The tenant header is client-controlled, so past
        :data:`MAX_TENANTS` distinct names everything new folds into
        :data:`OVERFLOW_TENANT` — the registry (and the bucket map)
        stays bounded no matter what clients send.
        """
        record = self.tenants.get(name)
        if record is None:
            if len(self.tenants) >= MAX_TENANTS:
                name = OVERFLOW_TENANT
                record = self.tenants.setdefault(
                    name, {"requests": 0, "rate_limited": 0}
                )
            else:
                record = {"requests": 0, "rate_limited": 0}
                self.tenants[name] = record
        return name, record

    def _bucket(self, name: str) -> TokenBucket:
        """The (lazily created) rate-limit bucket for one tenant."""
        with self._lock:
            bucket = self._buckets.get(name)
            if bucket is None:
                bucket = TokenBucket(self.tenant_rps, self.tenant_burst)
                self._buckets[name] = bucket
            return bucket

    def _shard_for(self, key: str) -> int:
        """Route a coalescing key to a shard (stable, uniform)."""
        return int(key[:8], 16) % self.shards

    def _run(self, corpus, analyses, config, key: str) -> Tuple[int, bytes]:
        pool = self.pools[self._shard_for(key)] if self.pools else None
        with self._lock:
            # this thread graduates from *waiting* to *running*; the
            # caller's finally decrements waiting exactly once, so put
            # the slot back on the way out.
            self.waiting -= 1
            self.in_flight += 1
        try:
            result = run_pipeline(
                corpus,
                analyses=analyses,
                jobs=pool.jobs if pool is not None else self.jobs,
                config=config,
                cache=self.cache,
                use_cache=self.cache is not None,
                pool=pool,
                observer=self.observer,
                chunk_size=self.chunk_size,
            )
        except Exception:
            # Request-level validation already happened in
            # _parse_request; anything escaping the pipeline here is a
            # service bug and must read as one, never as a client 400.
            with self._lock:
                self.admission["aborted"] += 1
            return 500, _error_body("internal service error", 500)
        finally:
            with self._lock:
                self.in_flight -= 1
                self.waiting += 1
        body = (result.to_json() + "\n").encode("utf-8")
        return 200, body

    def _parse_request(self, request: object):
        """Validate and resolve one request document.

        Shape (see ``docs/service.md``)::

            {"program": "...", "name": "p.rl", "kind": "program",
             "analyses": ["cert", "explore"], "config": {...}}

        or ``"programs": [{"name", "program", "kind"}, ...]`` for a
        whole corpus.  Raises :class:`ServiceError` on anything that
        ``repro batch`` would have refused at the command line.
        """
        if not isinstance(request, dict):
            raise ServiceError("request must be a JSON object")
        unknown = set(request) - {
            "program", "programs", "name", "kind", "analyses", "config",
            "deadline",
        }
        if unknown:
            raise ServiceError(
                f"unknown request field(s): {sorted(unknown)}"
            )

        # request-shape checks first: they are cheap and their error
        # messages should win over a parse error in the program text
        analyses = request.get("analyses", list(DEFAULT_ANALYSES))
        if not isinstance(analyses, list) or not all(
            isinstance(a, str) for a in analyses
        ):
            raise ServiceError("'analyses' must be an array of analysis names")
        for name in analyses:
            # validate *here*, before any pipeline work: an unknown
            # name must be a 400, and the pipeline's own ValueError
            # must stay free to mean "service bug" (the 500 path).
            if name not in ANALYSES:
                raise ServiceError(
                    f"unknown analysis {name!r}; "
                    f"available: {', '.join(sorted(ANALYSES))}"
                )

        config = request.get("config", {})
        if not isinstance(config, dict):
            raise ServiceError("'config' must be an object")
        config = dict(config)
        if "deadline" in request:
            if "deadline" in config:
                raise ServiceError(
                    "give the deadline once: top-level or config.deadline"
                )
            config["deadline"] = request["deadline"]
        if "deadline" not in config and self.default_deadline is not None:
            config["deadline"] = self.default_deadline
        for key, value in self.default_config.items():
            config.setdefault(key, value)
        for key in config:
            if key not in DEFAULT_CONFIG:
                raise ServiceError(
                    f"unknown config key {key!r}; "
                    f"available: {', '.join(sorted(DEFAULT_CONFIG))}"
                )

        if "programs" in request:
            if "program" in request:
                raise ServiceError("give either 'program' or 'programs', not both")
            entries = request["programs"]
            if not isinstance(entries, list) or not entries:
                raise ServiceError("'programs' must be a non-empty array")
        else:
            if "program" not in request:
                raise ServiceError("request needs a 'program' (source text)")
            entries = [
                {
                    "program": request["program"],
                    "name": request.get("name", "program"),
                    "kind": request.get("kind", "program"),
                }
            ]

        corpus = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise ServiceError(f"programs[{i}] must be an object")
            source = entry.get("program")
            if not isinstance(source, str) or not source.strip():
                raise ServiceError(
                    f"programs[{i}].program must be non-empty source text"
                )
            name = entry.get("name", f"program-{i}")
            if not isinstance(name, str) or not name:
                raise ServiceError(f"programs[{i}].name must be a string")
            kind = entry.get("kind", "program")
            if kind not in ("program", "statement"):
                raise ServiceError(
                    f"programs[{i}].kind must be 'program' or 'statement', "
                    f"got {kind!r}"
                )
            try:
                subject = (
                    parse_program(source)
                    if kind == "program"
                    else parse_statement(source)
                )
            except Exception as exc:
                raise ServiceError(f"{name}: parse error: {exc}")
            if kind == "program":
                problems = validate_program(subject)
                if problems:
                    raise ServiceError(f"{name}: {problems[0]}")
            corpus.append((name, subject))

        return corpus, tuple(analyses), config

    def _coalescing_key(self, corpus, analyses, config) -> str:
        """One hash for "the same work": canonical programs (so
        formatting-only differences coalesce, exactly like the cache),
        the analysis set, the config overlay, and the code version."""
        document = json.dumps(
            {
                "programs": sorted(
                    (name, pretty(subject)) for name, subject in corpus
                ),
                "analyses": sorted(analyses),
                "config": config,
                "version": repro.__version__,
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(document.encode("utf-8")).hexdigest()

    # -- introspection -------------------------------------------------

    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    def note_client_disconnect(self) -> None:
        """Record a client that went away mid-response (transport hook)."""
        with self._lock:
            self.client_disconnects += 1

    def note_bytes_read(self, count: int) -> None:
        """Record request-body bytes actually read off a socket.

        The 413/400 pre-read guards exist so this counter does *not*
        move for refused oversized bodies — the test suite asserts
        exactly that through a real socket.
        """
        with self._lock:
            self.body_bytes_read += count

    def service_counters(self) -> Dict[str, object]:
        """The ``service`` section of the metrics document."""
        lru = self.cache.lru_stats() if self.cache is not None else None
        with self._lock:
            counters: Dict[str, object] = {
                "requests": self.requests,
                "in_flight": self.in_flight,
                "waiting": self.waiting,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "draining": self.draining,
                "client_disconnects": self.client_disconnects,
                "bytes_read": self.body_bytes_read,
                "shards": self.shards,
                "uptime_seconds": self.uptime_seconds(),
                "lru_hits": lru["hits"] if lru else 0,
                "lru_misses": lru["misses"] if lru else 0,
                "admission": dict(self.admission, max_queue=self.max_queue),
                "tenants": {
                    name: dict(record)
                    for name, record in sorted(self.tenants.items())
                },
            }
        if lru is not None:
            counters["lru"] = lru
        if self.pools:
            shards = [
                {
                    "jobs": pool.jobs,
                    "submitted": pool.submitted,
                    "pools_started": pool.pools_started,
                }
                for pool in self.pools
            ]
            # "pool" stays the cross-shard aggregate so existing
            # dashboards keep one number; per-shard detail rides along
            # only when there is more than one shard to tell apart.
            counters["pool"] = {
                "jobs": sum(s["jobs"] for s in shards),
                "submitted": sum(s["submitted"] for s in shards),
                "pools_started": sum(s["pools_started"] for s in shards),
            }
            if len(shards) > 1:
                counters["pools"] = shards
        return counters

    def metrics_document(self) -> Dict[str, object]:
        """The cumulative ``repro-metrics/1`` document for ``/metrics``."""
        cache = (
            self.cache.stats.to_dict()
            if self.cache is not None
            else {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}
        )
        return self.observer.to_dict(
            elapsed_seconds=self.uptime_seconds(),
            jobs=self.jobs,
            deadline=self.default_deadline,
            cache=cache,
            service=self.service_counters(),
        )

    def health_document(self) -> Tuple[int, Dict[str, object]]:
        """The ``/healthz`` payload: 200 while serving, 503 draining.

        The snapshot is taken under ``_lock`` — request threads mutate
        every one of these fields, and a health probe racing a writer
        must never see a torn view (e.g. ``draining`` true with a
        stale ``in_flight``).
        """
        with self._lock:
            draining = self.draining
            document = {
                "status": "draining" if draining else "ok",
                "version": repro.__version__,
                "uptime_seconds": round(self.uptime_seconds(), 3),
                "requests": self.requests,
                "in_flight": self.in_flight,
                "waiting": self.waiting,
            }
        return (503 if draining else 200), document

    def drain_snapshot(self) -> Tuple[int, int]:
        """(in_flight, waiting) under the lock — for the drain log."""
        with self._lock:
            return self.in_flight, self.waiting
