"""Closed-loop load driver for ``repro serve`` (``repro loadtest``).

The driver spawns a real ``repro serve`` subprocess, then exercises it
the way a fleet of clients would — stdlib only (threads +
:mod:`http.client`), so the harness runs anywhere the service does.
Four phases:

1. **identity** — every distinct corpus request is computed in-driver
   with :func:`repro.pipeline.run_pipeline` and the server's response
   must be byte-identical; any divergence is an ``invalid_documents``
   count (the service's core contract, now checked over a real socket).
2. **steady** — ``clients`` closed-loop threads drive the mixed corpus
   for ``duration`` seconds under round-robin tenants, recording
   per-request latency and status; sustained RPS and p50/p95/p99 come
   from here.
3. **overload** — ``overload_clients`` threads hammer *unique*
   divergent programs (defeating both coalescing and the caches) so
   admission control must refuse; the driver counts the 429s and polls
   ``/healthz`` throughout to prove the health plane stays responsive.
4. **teardown** — ``/metrics`` is fetched and schema-validated, then
   SIGTERM; a clean drain-and-exit is part of the report.

``benchmarks/bench_serve.py`` turns the report into
``BENCH_serve.json``; every number in that artifact is produced by
this module against a live server — nothing is hand-written.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import repro
from repro.lang.parser import parse_program, parse_statement
from repro.observe import validate_metrics
from repro.pipeline import run_pipeline

#: How long (seconds) the driver waits for the spawned server's port
#: announcement before giving up.
STARTUP_TIMEOUT = 60.0

#: Per-request socket timeout (seconds).  Generous: an overloaded
#: closed-loop request legitimately waits for a worker slot.
REQUEST_TIMEOUT = 120.0

#: The announcement line printed by ``repro serve`` once it is bound
#: and warm.
_ANNOUNCE = re.compile(r"listening on http://([\d.]+):(\d+)")

#: The steady-phase corpus: a small mixed bag — the paper's Figure 3
#: program under two analysis sets plus two cheap statements — chosen
#: so coalescing, both cache tiers, and the pool all see traffic.
STEADY_CORPUS: Tuple[Dict[str, object], ...] = (
    {
        "name": "figure3.rl",
        "kind": "program",
        "analyses": ["cert", "lint"],
        "config": {},
    },
    {
        "name": "figure3-explore.rl",
        "kind": "program",
        "analyses": ["cert", "explore"],
        "config": {"max_states": 2000, "max_depth": 200},
    },
    {
        "name": "straightline.rl",
        "kind": "statement",
        "program": "begin x := 1; y := x + 1 end",
        "analyses": ["cert", "lint"],
        "config": {},
    },
    {
        "name": "branching.rl",
        "kind": "statement",
        "program": "begin x := 0; if x = 0 then y := 1 else y := 2 end",
        "analyses": ["cert", "explore"],
        "config": {"max_states": 500, "max_depth": 100},
    },
)

#: Tenant names cycled through by the steady-phase clients.
STEADY_TENANTS: Tuple[str, ...] = ("alpha", "beta", "gamma", "default")


@dataclass
class LoadtestOptions:
    """Knobs for one :func:`run_loadtest` campaign (see ``repro
    loadtest --help`` for the CLI spellings)."""

    duration: float = 10.0
    clients: int = 8
    jobs: int = 2
    shards: int = 2
    max_queue: int = 16
    tenant_rps: Optional[float] = None
    overload_clients: int = 32
    overload_seconds: float = 4.0
    smoke: bool = False
    host: str = "127.0.0.1"


def _steady_requests() -> List[Tuple[bytes, bytes]]:
    """The steady corpus as (request body, expected response) pairs.

    Expectations are computed in-driver by the very pipeline the
    service wraps — the byte-identity oracle the loadtest holds every
    200 response against.
    """
    from repro.workloads.paper import FIGURE3_SOURCE

    pairs = []
    for entry in STEADY_CORPUS:
        source = entry.get("program", FIGURE3_SOURCE)
        request = {
            "program": source,
            "name": entry["name"],
            "kind": entry["kind"],
            "analyses": entry["analyses"],
            "config": entry["config"],
        }
        subject = (
            parse_program(source)
            if entry["kind"] == "program"
            else parse_statement(source)
        )
        expected = run_pipeline(
            [(entry["name"], subject)],
            analyses=tuple(entry["analyses"]),
            config=dict(entry["config"]),
            use_cache=False,
        )
        pairs.append(
            (
                json.dumps(request, sort_keys=True).encode("utf-8"),
                (expected.to_json() + "\n").encode("utf-8"),
            )
        )
    return pairs


def _overload_body(serial: int) -> bytes:
    """A unique, divergent, deadline-bound request.

    Unique variable names defeat coalescing and both cache tiers, the
    unbounded loop with huge state/depth budgets makes the deadline
    the binding limit — every admitted request genuinely occupies a
    worker for ~``deadline`` seconds, which is what fills the
    admission gauge and forces 429s.
    """
    name = f"x{serial}"
    request = {
        "program": (
            f"begin {name} := 0; "
            f"while 0 = 0 do {name} := {name} + 1 end"
        ),
        "name": f"overload-{serial}.rl",
        "kind": "statement",
        "analyses": ["explore"],
        "config": {
            "deadline": 0.4,
            "max_states": 10**8,
            "max_depth": 10**8,
        },
    }
    return json.dumps(request, sort_keys=True).encode("utf-8")


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    tenant: Optional[str] = None,
) -> Tuple[int, bytes]:
    """One HTTP round trip on a fresh connection; returns (status, body)."""
    conn = http.client.HTTPConnection(host, port, timeout=REQUEST_TIMEOUT)
    try:
        headers = {"Content-Type": "application/json"}
        if tenant is not None:
            headers["X-Repro-Tenant"] = tenant
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _percentiles(samples: List[float]) -> Dict[str, object]:
    """p50/p95/p99/max (milliseconds) of a latency sample list."""
    if not samples:
        return {"p50": None, "p95": None, "p99": None, "max": None,
                "samples": 0}
    ordered = sorted(samples)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return round(ordered[index] * 1000.0, 3)

    return {
        "p50": at(0.50),
        "p95": at(0.95),
        "p99": at(0.99),
        "max": round(ordered[-1] * 1000.0, 3),
        "samples": len(ordered),
    }


def _spawn_server(options: LoadtestOptions, cache_dir: str):
    """Start ``repro serve`` as a subprocess; returns (proc, port)."""
    command = [
        sys.executable, "-m", "repro", "serve",
        "--host", options.host,
        "--port", "0",
        "--jobs", str(options.jobs),
        "--shards", str(options.shards),
        "--max-queue", str(options.max_queue),
        "--cache-dir", cache_dir,
        "--quiet",
    ]
    if options.tenant_rps is not None:
        command += ["--tenant-rps", str(options.tenant_rps)]
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _ANNOUNCE.search(line)
        if match:
            return proc, int(match.group(2))
    proc.kill()
    proc.wait()
    raise RuntimeError(
        f"server did not announce a port within {STARTUP_TIMEOUT}s "
        f"(last line: {line!r})"
    )


def run_loadtest(options: LoadtestOptions) -> Dict[str, object]:
    """Run the full campaign; returns the JSON-ready report.

    The report carries only measured values: identity counts, steady
    RPS + latency percentiles + status histogram, overload statuses and
    health-probe latencies, the server's own ``/metrics`` ``service``
    section, its schema-validation verdict, and whether SIGTERM
    produced a clean drain.
    """
    corpus = _steady_requests()
    cache_dir = tempfile.mkdtemp(prefix="repro-loadtest-")
    proc = None
    try:
        proc, port = _spawn_server(options, cache_dir)
        host = options.host

        # -- phase 1: identity -----------------------------------------
        identity_checked = 0
        invalid_documents = 0
        for body, expected in corpus:
            status, payload = _request(host, port, "POST", "/analyze", body)
            identity_checked += 1
            if status != 200 or payload != expected:
                invalid_documents += 1

        # -- phase 2: steady closed loop -------------------------------
        lock = threading.Lock()
        latencies: List[float] = []
        statuses: Dict[str, int] = {}
        network_errors = 0
        stop_at = time.monotonic() + options.duration

        def steady_client(offset: int) -> None:
            nonlocal invalid_documents, network_errors
            serial = offset
            while time.monotonic() < stop_at:
                body, expected = corpus[serial % len(corpus)]
                tenant = STEADY_TENANTS[serial % len(STEADY_TENANTS)]
                serial += 1
                started = time.monotonic()
                try:
                    status, payload = _request(
                        host, port, "POST", "/analyze", body, tenant=tenant
                    )
                except OSError:
                    with lock:
                        network_errors += 1
                    continue
                elapsed = time.monotonic() - started
                with lock:
                    latencies.append(elapsed)
                    statuses[str(status)] = statuses.get(str(status), 0) + 1
                    if status == 200 and payload != expected:
                        invalid_documents += 1

        steady_started = time.monotonic()
        threads = [
            threading.Thread(target=steady_client, args=(i,), daemon=True)
            for i in range(options.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        steady_elapsed = time.monotonic() - steady_started

        # -- phase 3: overload ------------------------------------------
        overload_statuses: Dict[str, int] = {}
        overload_errors = 0
        healthz_latencies: List[float] = []
        healthz_ok = 0
        healthz_probes = 0
        overload_stop = time.monotonic() + options.overload_seconds
        serial_lock = threading.Lock()
        serial_box = [0]

        def overload_client() -> None:
            nonlocal overload_errors
            while time.monotonic() < overload_stop:
                with serial_lock:
                    serial_box[0] += 1
                    serial = serial_box[0]
                try:
                    status, _payload = _request(
                        host, port, "POST", "/analyze",
                        _overload_body(serial), tenant="storm",
                    )
                except OSError:
                    with lock:
                        overload_errors += 1
                    continue
                with lock:
                    overload_statuses[str(status)] = (
                        overload_statuses.get(str(status), 0) + 1
                    )

        threads = [
            threading.Thread(target=overload_client, daemon=True)
            for _ in range(options.overload_clients)
        ]
        for thread in threads:
            thread.start()
        while time.monotonic() < overload_stop:
            started = time.monotonic()
            try:
                status, _payload = _request(host, port, "GET", "/healthz")
            except OSError:
                healthz_probes += 1
                time.sleep(0.1)
                continue
            healthz_latencies.append(time.monotonic() - started)
            healthz_probes += 1
            if status == 200:
                healthz_ok += 1
            time.sleep(0.1)
        for thread in threads:
            thread.join()

        # -- phase 4: metrics + drain -----------------------------------
        status, payload = _request(host, port, "GET", "/metrics")
        metrics = json.loads(payload.decode("utf-8")) if status == 200 else {}
        problems = validate_metrics(metrics) if metrics else ["no /metrics"]
        service_section = metrics.get("service", {})
        admission = service_section.get("admission", {})

        proc.send_signal(signal.SIGTERM)
        try:
            returncode = proc.wait(timeout=STARTUP_TIMEOUT)
        except subprocess.TimeoutExpired:
            proc.kill()
            returncode = proc.wait()
        clean_exit = returncode == 0

        return {
            "version": repro.__version__,
            "smoke": options.smoke,
            "jobs": options.jobs,
            "shards": options.shards,
            "max_queue": options.max_queue,
            "identity": {
                "documents": identity_checked,
                "invalid_documents": invalid_documents,
            },
            "loadtest": {
                "clients": options.clients,
                "duration_seconds": round(steady_elapsed, 3),
                "requests": len(latencies),
                "rps_sustained": round(
                    len(latencies) / steady_elapsed, 2
                ) if steady_elapsed > 0 else 0.0,
                "latency_ms": _percentiles(latencies),
                "statuses": statuses,
                "network_errors": network_errors,
            },
            "overload": {
                "clients": options.overload_clients,
                "duration_seconds": options.overload_seconds,
                "statuses": overload_statuses,
                "rejected_busy_429": overload_statuses.get("429", 0),
                "errors": overload_errors,
                "healthz": {
                    "probes": healthz_probes,
                    "ok": healthz_ok,
                    "latency_ms": _percentiles(healthz_latencies),
                },
            },
            "service": service_section,
            "admission": admission,
            "metrics_valid": not problems,
            "metrics_problems": problems,
            "clean_exit": clean_exit,
        }
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()
        shutil.rmtree(cache_dir, ignore_errors=True)
