"""A resident analysis service: the batch pipeline behind HTTP.

``repro serve`` keeps one process resident so repeated analysis of
similar programs pays for analysis, never for startup: a persistent
pre-forked worker pool, an in-memory LRU in front of the on-disk
content-addressed cache, and coalescing of concurrent identical
requests.  The response document is byte-identical to
``repro batch --json`` for the same inputs — the service adds speed,
never a second result format.  The front line degrades predictably:
a bounded admission gauge and per-tenant token buckets turn overload
into cheap 429s (with ``Retry-After``), and ``--shards`` splits the
worker pool so one hot key cannot head-of-line-block the rest.
``repro loadtest`` (:mod:`repro.service.loadtest`) measures all of it
against a live spawned server.  See ``docs/service.md``.
"""

from repro.service.app import (
    DEFAULT_ANALYSES,
    AnalysisService,
    ServiceError,
)
from repro.service.httpd import AnalysisServer, serve
from repro.service.loadtest import LoadtestOptions, run_loadtest

__all__ = [
    "DEFAULT_ANALYSES",
    "AnalysisServer",
    "AnalysisService",
    "LoadtestOptions",
    "ServiceError",
    "run_loadtest",
    "serve",
]
