"""A resident analysis service: the batch pipeline behind HTTP.

``repro serve`` keeps one process resident so repeated analysis of
similar programs pays for analysis, never for startup: a persistent
pre-forked worker pool, an in-memory LRU in front of the on-disk
content-addressed cache, and coalescing of concurrent identical
requests.  The response document is byte-identical to
``repro batch --json`` for the same inputs — the service adds speed,
never a second result format.  See ``docs/service.md``.
"""

from repro.service.app import (
    DEFAULT_ANALYSES,
    AnalysisService,
    ServiceError,
)
from repro.service.httpd import AnalysisServer, serve

__all__ = [
    "DEFAULT_ANALYSES",
    "AnalysisServer",
    "AnalysisService",
    "ServiceError",
    "serve",
]
