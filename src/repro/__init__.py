"""repro — a reproduction of Reitman's Concurrent Flow Mechanism (SOSP 1979).

The library certifies the information security of parallel programs at
compile time.  The headline API:

>>> from repro import parse_program, StaticBinding, certify, two_level
>>> scheme = two_level()
>>> prog = parse_program('''
...     var x, y : integer; s : semaphore initially(0);
...     cobegin
...         if x # 0 then signal(s)
...     ||
...         begin wait(s); y := 1 end
...     coend
... ''')
>>> binding = StaticBinding(scheme, {"x": "high", "y": "low", "s": "low"})
>>> certify(prog, binding).certified
False

See README.md for the full tour and DESIGN.md for the paper mapping.
"""

from repro.lang import (
    parse_expression,
    parse_program,
    parse_statement,
    pretty,
    validate_program,
)
from repro.lattice import (
    ChainLattice,
    ExtendedLattice,
    FiniteLattice,
    Lattice,
    NIL,
    PowersetLattice,
    ProductLattice,
    four_level,
    military,
    two_level,
)
from repro.core import (
    StaticBinding,
    certify,
    certify_denning,
    certify_flow_sensitive,
    infer_binding,
)
from repro.logic import check_proof, generate_proof
from repro.observe import Budget
from repro.runtime import (
    EnforcingMonitor,
    TaintMonitor,
    check_noninterference,
    explore,
    run,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # language
    "parse_program",
    "parse_statement",
    "parse_expression",
    "pretty",
    "validate_program",
    # lattices
    "Lattice",
    "ChainLattice",
    "PowersetLattice",
    "ProductLattice",
    "FiniteLattice",
    "ExtendedLattice",
    "NIL",
    "two_level",
    "four_level",
    "military",
    # core mechanisms
    "StaticBinding",
    "certify",
    "certify_denning",
    "certify_flow_sensitive",
    "infer_binding",
    # flow logic
    "generate_proof",
    "check_proof",
    # observability
    "Budget",
    # runtime
    "run",
    "explore",
    "check_noninterference",
    "TaintMonitor",
    "EnforcingMonitor",
]
