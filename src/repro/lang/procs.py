"""Procedures: declarations, calls, and sound inline expansion.

The paper's language has no procedures, but Denning & Denning's
original mechanism (CACM 1977, section on program certification)
covers procedure calls, so the library supports them as a marked
extension with deliberately simple semantics:

* ``proc p(in a, b; out c) S`` declares a procedure whose body may
  reference **only its formals** (no globals, no semaphores) — this
  keeps procedures meaningful under concurrency without a shared-state
  aliasing story;
* ``call p(e1, e2; x)`` passes by value/result: the ``in`` actuals are
  copied into the formals on entry, the ``out`` formals are copied to
  the actual variables on return;
* procedures may call **previously declared** procedures only, so
  recursion is impossible by construction.

With those rules, a call means exactly its inline expansion: fresh
names for the formals, a copy-in prologue, the (renamed) body, and a
copy-out epilogue.  :func:`expand_program` performs that expansion,
producing a procedure-free program on which *every* existing analysis
— CFM, the flow logic, the runtime, the explorer — operates unchanged
and agrees with the call-site instantiation rule of the Dennings'
treatment (check ``sbind(actual-in) <= sbind(formal)`` etc. falls out
of the expanded assignments).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from repro.errors import ValidationError
from repro.lang.ast import (
    Assign,
    Begin,
    Expr,
    Loc,
    Node,
    Program,
    Stmt,
    VarDecl,
    iter_nodes,
    iter_statements,
    used_variables,
)

class ProcDecl(Node):
    """``proc name(in a, b; out c) body``."""

    __slots__ = ("name", "ins", "outs", "body")

    def __init__(
        self,
        name: str,
        ins: Sequence[str],
        outs: Sequence[str],
        body: Stmt,
        loc: Optional[Loc] = None,
    ):
        super().__init__(loc)
        if not outs and not ins:
            raise ValidationError(f"procedure {name!r} has no parameters")
        overlap = set(ins) & set(outs)
        if overlap:
            raise ValidationError(
                f"procedure {name!r}: parameters {sorted(overlap)} are both in and out"
            )
        self.name = name
        self.ins: List[str] = list(ins)
        self.outs: List[str] = list(outs)
        self.body = body

    def children(self):
        return (self.body,)

    @property
    def formals(self) -> List[str]:
        return self.ins + self.outs


class Call(Stmt):
    """``call name(e1, ...; v1, ...)`` — value/result parameter passing."""

    __slots__ = ("name", "in_args", "out_args")

    def __init__(
        self,
        name: str,
        in_args: Sequence[Expr],
        out_args: Sequence[str],
        loc: Optional[Loc] = None,
    ):
        super().__init__(loc)
        self.name = name
        self.in_args: List[Expr] = list(in_args)
        self.out_args: List[str] = list(out_args)

    def children(self):
        return tuple(self.in_args)


def validate_procedures(program: Program) -> List[str]:
    """Procedure-specific well-formedness problems (empty list = fine)."""
    problems: List[str] = []
    table: Dict[str, ProcDecl] = {}
    for proc in getattr(program, "procs", []):
        if proc.name in table:
            problems.append(f"procedure {proc.name!r} declared twice")
        if len(set(proc.formals)) != len(proc.formals):
            problems.append(f"procedure {proc.name!r} has duplicate parameters")
        # Bodies may reference only formals and earlier procedures.
        allowed = set(proc.formals)
        for node in iter_statements(proc.body):
            if isinstance(node, Call):
                if node.name not in table:
                    problems.append(
                        f"procedure {proc.name!r} calls {node.name!r}, which is "
                        f"not declared earlier (recursion is not supported)"
                    )
                else:
                    problems.extend(_check_call(node, table[node.name], allowed))
        from repro.lang.ast import Wait, Signal

        for node in iter_statements(proc.body):
            if isinstance(node, (Wait, Signal)):
                problems.append(
                    f"procedure {proc.name!r} uses semaphores; procedures are "
                    f"pure over their parameters"
                )
                break
        foreign = {
            name
            for name in used_variables(proc.body)
            if name not in allowed
        }
        # Variables introduced by nested calls are checked per call.
        foreign -= {name for node in iter_statements(proc.body)
                    if isinstance(node, Call) for name in node.out_args}
        if foreign:
            problems.append(
                f"procedure {proc.name!r} references non-parameters "
                f"{sorted(foreign)}"
            )
        table[proc.name] = proc

    for node in iter_statements(program.body):
        if isinstance(node, Call):
            if node.name not in table:
                problems.append(f"call to undeclared procedure {node.name!r}")
            else:
                declared = set(program.declared())
                problems.extend(_check_call(node, table[node.name], declared))
    return problems


def _check_call(call: Call, proc: ProcDecl, in_scope) -> List[str]:
    problems = []
    if len(call.in_args) != len(proc.ins):
        problems.append(
            f"call to {proc.name!r} passes {len(call.in_args)} in-arguments, "
            f"expected {len(proc.ins)}"
        )
    if len(call.out_args) != len(proc.outs):
        problems.append(
            f"call to {proc.name!r} passes {len(call.out_args)} out-arguments, "
            f"expected {len(proc.outs)}"
        )
    if len(set(call.out_args)) != len(call.out_args):
        problems.append(f"call to {proc.name!r} repeats an out-argument")
    return problems


def has_procedures(program: Program) -> bool:
    """True if the program declares procedures or contains calls."""
    if getattr(program, "procs", []):
        return True
    return any(isinstance(s, Call) for s in iter_statements(program.body))


def expand_program(program: Program) -> Program:
    """Inline every procedure call; the result has no procs or calls.

    Formals get fresh names per activation (``name#k$formal``); the
    prologue copies the in-actuals, the epilogue copies the
    out-formals to the out-actuals.  Nested calls are expanded
    innermost-first (the body is expanded before being instantiated),
    so the result is always call-free.  Declarations for the fresh
    activation variables are appended.
    """
    problems = validate_procedures(program)
    if problems:
        raise ValidationError("; ".join(problems))
    table: Dict[str, ProcDecl] = {}
    expanded_bodies: Dict[str, Stmt] = {}
    fresh_decls: List[str] = []
    taken = set(used_variables(program.body)) | set(program.declared())
    for proc in getattr(program, "procs", []):
        taken |= set(used_variables(proc.body))
    activation_counter = itertools.count(1)

    from repro.lang.clone import clone_expr, clone_stmt

    def fresh_name(base: str) -> str:
        name = base
        while name in taken:
            name = "_" + name
        taken.add(name)
        return name

    def expand_stmt(stmt: Stmt) -> Stmt:
        from repro.lang.ast import Begin as BeginNode, Cobegin, If, While

        if isinstance(stmt, Call):
            proc = table[stmt.name]
            activation = next(activation_counter)
            site = _loc_of(stmt)
            rename = {
                formal: fresh_name(f"{stmt.name}_{activation}_{formal}")
                for formal in proc.formals
            }
            fresh_decls.extend(rename.values())
            prologue = [
                Assign(rename[formal], clone_expr(actual, default_loc=site), site)
                for formal, actual in zip(proc.ins, stmt.in_args)
            ]
            # unlocated body nodes (builder-made procedures) point at the
            # call site, so diagnostics land somewhere meaningful
            body = clone_stmt(expanded_bodies[stmt.name], rename, default_loc=site)
            epilogue = [
                Assign(actual, _var(rename[formal], stmt), _loc_of(stmt))
                for formal, actual in zip(proc.outs, stmt.out_args)
            ]
            return BeginNode(prologue + [body] + epilogue, _loc_of(stmt))
        if isinstance(stmt, BeginNode):
            return BeginNode([expand_stmt(s) for s in stmt.body], _loc_of(stmt))
        if isinstance(stmt, Cobegin):
            return Cobegin([expand_stmt(s) for s in stmt.branches], _loc_of(stmt))
        if isinstance(stmt, If):
            return If(
                clone_expr(stmt.cond, default_loc=_loc_of(stmt)),
                expand_stmt(stmt.then_branch),
                expand_stmt(stmt.else_branch) if stmt.else_branch else None,
                _loc_of(stmt),
            )
        if isinstance(stmt, While):
            return While(
                clone_expr(stmt.cond, default_loc=_loc_of(stmt)),
                expand_stmt(stmt.body),
                _loc_of(stmt),
            )
        return clone_stmt(stmt)

    for proc in getattr(program, "procs", []):
        expanded_bodies[proc.name] = expand_stmt(proc.body)
        table[proc.name] = proc

    body = expand_stmt(program.body)
    decls = [VarDecl(list(d.names), d.kind, d.initial, d.loc) for d in program.decls]
    if fresh_decls:
        decls.append(VarDecl(fresh_decls, "integer", 0))
    return Program(decls, body, program.loc, procs=(), synthetic=fresh_decls)


def resolve_subject(subject):
    """Normalize an analysis subject to ``(subject, body statement)``.

    Programs containing procedures are expanded first, so every
    downstream analysis sees only the paper's core language.
    """
    if isinstance(subject, Program):
        if has_procedures(subject):
            subject = expand_program(subject)
        return subject, subject.body
    return subject, subject


def _var(name: str, at: Stmt):
    from repro.lang.ast import Var

    return Var(name, _loc_of(at))


def _loc_of(node) -> Loc:
    return Loc(node.loc.line, node.loc.column) if node.loc else Loc.none()
