"""Recursive-descent parser for the concurrent language.

Grammar (EBNF, ``[]`` optional, ``{}`` repetition)::

    program  = [ "var" decl ";" { decl ";" } ] stmt
    decl     = ident { "," ident } ":" type
    type     = "integer" | "semaphore" [ "initially" "(" int ")" ]
    stmt     = assign | if | while | begin | cobegin | wait | signal | "skip"
    assign   = ident ":=" expr
    if       = "if" expr "then" stmt [ "else" stmt ]
    while    = "while" expr "do" stmt
    begin    = "begin" stmt { ";" stmt } [ ";" ] "end"
    cobegin  = "cobegin" stmt { "||" stmt } "coend"
    wait     = "wait" "(" ident ")"
    signal   = "signal" "(" ident ")"
    expr     = andexpr { "or" andexpr }
    andexpr  = notexpr { "and" notexpr }
    notexpr  = "not" notexpr | relexpr
    relexpr  = arith [ ("=" | "#" | "<" | "<=" | ">" | ">=") arith ]
    arith    = term { ("+" | "-") term }
    term     = factor { ("*" | "/" | "mod") factor }
    factor   = int | "true" | "false" | ident | "(" expr ")" | "-" factor

``#`` is the paper's "not equal" operator.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Loc,
    Program,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Var,
    VarDecl,
    Wait,
    While,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token


class Parser:
    """A single-use parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _loc(self) -> Loc:
        tok = self._peek()
        return Loc(tok.line, tok.column)

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(f"{message}, found {tok.describe()}", tok.line, tok.column)

    def _expect_symbol(self, sym: str) -> Token:
        if not self._peek().is_symbol(sym):
            raise self._error(f"expected {sym!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._peek().is_keyword(word):
            raise self._error(f"expected {word!r}")
        return self._advance()

    def _expect_ident(self, what: str = "identifier") -> Token:
        if self._peek().kind != "ident":
            raise self._error(f"expected {what}")
        return self._advance()

    # -- programs and declarations --------------------------------------

    def parse_program(self) -> Program:
        """Parse a full program (procedures, declarations, one statement)."""
        loc = self._loc()
        procs = []
        while self._peek().is_keyword("proc"):
            procs.append(self._parse_proc())
            if self._peek().is_symbol(";"):
                self._advance()
        decls: List[VarDecl] = []
        if self._peek().is_keyword("var"):
            self._advance()
            decls.append(self._parse_decl())
            self._expect_symbol(";")
            # Further declaration groups, until the body's first statement.
            # Both a declaration and an assignment start with an identifier,
            # so look ahead: "ident {, ident} :" is a declaration group,
            # "ident :=" is the body.
            while self._peek().kind == "ident" and self._looks_like_decl():
                decls.append(self._parse_decl())
                self._expect_symbol(";")
        body = self.parse_statement()
        if self._peek().kind != "eof":
            raise self._error("expected end of input after program body")
        return Program(decls, body, loc, procs=procs)

    def _parse_proc(self):
        """``proc name(in a, b; out c) stmt`` (either section optional)."""
        from repro.lang.procs import ProcDecl

        loc = self._loc()
        self._expect_keyword("proc")
        name = self._expect_ident("procedure name").value
        self._expect_symbol("(")
        ins: List[str] = []
        outs: List[str] = []
        # "in" and "out" are contextual markers, not reserved words.
        if self._peek().kind == "ident" and self._peek().value == "in":
            self._advance()
            ins.append(self._expect_ident("in-parameter").value)
            while self._peek().is_symbol(","):
                self._advance()
                ins.append(self._expect_ident("in-parameter").value)
        if self._peek().is_symbol(";"):
            self._advance()
        if self._peek().kind == "ident" and self._peek().value == "out":
            self._advance()
            outs.append(self._expect_ident("out-parameter").value)
            while self._peek().is_symbol(","):
                self._advance()
                outs.append(self._expect_ident("out-parameter").value)
        self._expect_symbol(")")
        body = self.parse_statement()
        return ProcDecl(name, ins, outs, body, loc)

    def _looks_like_decl(self) -> bool:
        """Lookahead: does an ``ident {, ident} :`` declaration follow?"""
        pos = self._pos
        while True:
            if self._tokens[pos].kind != "ident":
                return False
            pos += 1
            tok = self._tokens[pos]
            if tok.is_symbol(":"):
                return True
            if not tok.is_symbol(","):
                return False
            pos += 1

    def _parse_decl(self) -> VarDecl:
        loc = self._loc()
        names = [self._expect_ident("declared variable name").value]
        while self._peek().is_symbol(","):
            self._advance()
            names.append(self._expect_ident("declared variable name").value)
        self._expect_symbol(":")
        if self._peek().is_keyword("integer"):
            self._advance()
            kind, initial = "integer", 0
            if self._peek().is_keyword("initially"):
                initial = self._parse_initially()
        elif self._peek().is_keyword("semaphore"):
            self._advance()
            kind, initial = "semaphore", 0
            if self._peek().is_keyword("initially"):
                initial = self._parse_initially()
        else:
            raise self._error("expected 'integer' or 'semaphore'")
        return VarDecl(names, kind, initial, loc)

    def _parse_initially(self) -> int:
        self._expect_keyword("initially")
        self._expect_symbol("(")
        negative = False
        if self._peek().is_symbol("-"):
            negative = True
            self._advance()
        tok = self._peek()
        if tok.kind != "int":
            raise self._error("expected integer initial value")
        self._advance()
        self._expect_symbol(")")
        value = int(tok.value)
        return -value if negative else value

    # -- statements ------------------------------------------------------

    def parse_statement(self) -> Stmt:
        """Parse one statement."""
        tok = self._peek()
        loc = self._loc()
        if tok.is_keyword("begin"):
            return self._parse_begin()
        if tok.is_keyword("cobegin"):
            return self._parse_cobegin()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("wait"):
            self._advance()
            self._expect_symbol("(")
            sem = self._expect_ident("semaphore name").value
            self._expect_symbol(")")
            return Wait(sem, loc)
        if tok.is_keyword("signal"):
            self._advance()
            self._expect_symbol("(")
            sem = self._expect_ident("semaphore name").value
            self._expect_symbol(")")
            return Signal(sem, loc)
        if tok.is_keyword("skip"):
            self._advance()
            return Skip(loc)
        if tok.is_keyword("call"):
            return self._parse_call()
        if tok.kind == "ident":
            name = self._advance().value
            self._expect_symbol(":=")
            expr = self.parse_expression()
            return Assign(name, expr, loc)
        raise self._error("expected a statement")

    def _parse_call(self):
        """``call name(e1, ...; v1, ...)`` (either argument list optional)."""
        from repro.lang.procs import Call

        loc = self._loc()
        self._expect_keyword("call")
        name = self._expect_ident("procedure name").value
        self._expect_symbol("(")
        in_args: List = []
        out_args: List[str] = []
        if not self._peek().is_symbol(")") and not self._peek().is_symbol(";"):
            in_args.append(self.parse_expression())
            while self._peek().is_symbol(","):
                self._advance()
                in_args.append(self.parse_expression())
        if self._peek().is_symbol(";"):
            self._advance()
            if self._peek().kind == "ident":
                out_args.append(self._advance().value)
                while self._peek().is_symbol(","):
                    self._advance()
                    out_args.append(self._expect_ident("out-argument variable").value)
        self._expect_symbol(")")
        return Call(name, in_args, out_args, loc)

    def _parse_begin(self) -> Begin:
        loc = self._loc()
        self._expect_keyword("begin")
        body = [self.parse_statement()]
        while self._peek().is_symbol(";"):
            self._advance()
            if self._peek().is_keyword("end"):
                break  # tolerate a trailing semicolon
            body.append(self.parse_statement())
        self._expect_keyword("end")
        return Begin(body, loc)

    def _parse_cobegin(self) -> Cobegin:
        loc = self._loc()
        self._expect_keyword("cobegin")
        branches = [self.parse_statement()]
        while self._peek().is_symbol("||"):
            self._advance()
            branches.append(self.parse_statement())
        self._expect_keyword("coend")
        return Cobegin(branches, loc)

    def _parse_if(self) -> If:
        loc = self._loc()
        self._expect_keyword("if")
        cond = self.parse_expression()
        self._expect_keyword("then")
        then_branch = self.parse_statement()
        else_branch: Optional[Stmt] = None
        if self._peek().is_keyword("else"):
            self._advance()
            else_branch = self.parse_statement()
        return If(cond, then_branch, else_branch, loc)

    def _parse_while(self) -> While:
        loc = self._loc()
        self._expect_keyword("while")
        cond = self.parse_expression()
        self._expect_keyword("do")
        body = self.parse_statement()
        return While(cond, body, loc)

    # -- expressions ------------------------------------------------------

    def parse_expression(self) -> Expr:
        """Parse one expression (lowest precedence: ``or``)."""
        expr = self._parse_and()
        while self._peek().is_keyword("or"):
            loc = self._loc()
            self._advance()
            expr = BinOp("or", expr, self._parse_and(), loc)
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_not()
        while self._peek().is_keyword("and"):
            loc = self._loc()
            self._advance()
            expr = BinOp("and", expr, self._parse_not(), loc)
        return expr

    def _parse_not(self) -> Expr:
        if self._peek().is_keyword("not"):
            loc = self._loc()
            self._advance()
            return UnOp("not", self._parse_not(), loc)
        return self._parse_rel()

    def _parse_rel(self) -> Expr:
        expr = self._parse_arith()
        tok = self._peek()
        if tok.kind == "symbol" and tok.value in ("=", "#", "<", "<=", ">", ">="):
            loc = self._loc()
            self._advance()
            expr = BinOp(tok.value, expr, self._parse_arith(), loc)
        return expr

    def _parse_arith(self) -> Expr:
        expr = self._parse_term()
        while self._peek().is_symbol("+") or self._peek().is_symbol("-"):
            op = self._advance().value
            expr = BinOp(op, expr, self._parse_term())
        return expr

    def _parse_term(self) -> Expr:
        expr = self._parse_factor()
        while (
            self._peek().is_symbol("*")
            or self._peek().is_symbol("/")
            or self._peek().is_keyword("mod")
        ):
            op = self._advance().value
            expr = BinOp(op, expr, self._parse_factor())
        return expr

    def _parse_factor(self) -> Expr:
        tok = self._peek()
        loc = self._loc()
        if tok.kind == "int":
            self._advance()
            return IntLit(int(tok.value), loc)
        if tok.is_keyword("true"):
            self._advance()
            return BoolLit(True, loc)
        if tok.is_keyword("false"):
            self._advance()
            return BoolLit(False, loc)
        if tok.kind == "ident":
            self._advance()
            return Var(tok.value, loc)
        if tok.is_symbol("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_symbol(")")
            return expr
        if tok.is_symbol("-"):
            self._advance()
            return UnOp("-", self._parse_factor(), loc)
        raise self._error("expected an expression")


def parse_program(source: str) -> Program:
    """Parse complete source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_statement(source: str) -> Stmt:
    """Parse source text containing exactly one statement."""
    parser = Parser(tokenize(source))
    stmt = parser.parse_statement()
    if parser._peek().kind != "eof":
        raise parser._error("expected end of input after statement")
    return stmt


def parse_expression(source: str) -> Expr:
    """Parse source text containing exactly one expression."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expression()
    if parser._peek().kind != "eof":
        raise parser._error("expected end of input after expression")
    return expr
