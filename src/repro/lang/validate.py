"""Static well-formedness checks, independent of security concerns.

A :class:`~repro.lang.ast.Program` is *valid* when:

* every used name is declared exactly once;
* ``wait``/``signal`` are applied only to semaphores;
* semaphores are never assigned to, and never read inside expressions
  (the language offers no way to inspect a semaphore's counter — its
  only observable effect is synchronization, which is exactly what
  makes the paper's global flows interesting);
* semaphore initial values are non-negative.

:func:`validate_program` returns the list of problems (empty when the
program is valid); :func:`check_program` raises on the first problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ValidationError
from repro.lang.ast import (
    Assign,
    Loc,
    Node,
    Program,
    Signal,
    Var,
    Wait,
    iter_nodes,
)


@dataclass(frozen=True)
class Problem:
    """One validation finding, with the offending source location."""

    message: str
    loc: Loc

    def __str__(self) -> str:
        prefix = f"{self.loc}: " if self.loc else ""
        return prefix + self.message


def validate_program(program: Program) -> List[Problem]:
    """Return all validation problems of ``program`` (empty list = valid)."""
    problems: List[Problem] = []
    from repro.lang.procs import validate_procedures

    for message in validate_procedures(program):
        problems.append(Problem(message, program.loc))
    kinds: Dict[str, str] = {}
    for decl in program.decls:
        for name in decl.names:
            if name in kinds:
                problems.append(Problem(f"variable {name!r} declared twice", decl.loc))
            kinds[name] = decl.kind
        if decl.kind == "semaphore" and decl.initial < 0:
            problems.append(
                Problem(
                    f"semaphore {decl.names[0]!r} has negative initial value "
                    f"{decl.initial}",
                    decl.loc,
                )
            )

    def kind_of(name: str, node: Node) -> str:
        if name not in kinds:
            problems.append(Problem(f"variable {name!r} is not declared", node.loc))
            return "integer"  # report once; assume the permissive kind
        return kinds[name]

    for node in iter_nodes(program.body):
        if isinstance(node, Assign):
            if kind_of(node.target, node) == "semaphore":
                problems.append(
                    Problem(
                        f"semaphore {node.target!r} may only be changed by "
                        f"wait/signal, not assignment",
                        node.loc,
                    )
                )
        elif isinstance(node, (Wait, Signal)):
            if kind_of(node.sem, node) != "semaphore":
                op = "wait" if isinstance(node, Wait) else "signal"
                problems.append(
                    Problem(f"{op} applied to non-semaphore {node.sem!r}", node.loc)
                )
        elif isinstance(node, Var):
            if kind_of(node.name, node) == "semaphore":
                problems.append(
                    Problem(
                        f"semaphore {node.name!r} cannot be read in an expression",
                        node.loc,
                    )
                )
        else:
            from repro.lang.procs import Call

            if isinstance(node, Call):
                for name in node.out_args:
                    if kind_of(name, node) == "semaphore":
                        problems.append(
                            Problem(
                                f"semaphore {name!r} cannot be an out-argument",
                                node.loc,
                            )
                        )
    return problems


def check_program(program: Program) -> Program:
    """Validate, raising :class:`ValidationError` on the first problem."""
    problems = validate_program(program)
    if problems:
        first = problems[0]
        raise ValidationError(
            str(first) + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else "")
        )
    return program
