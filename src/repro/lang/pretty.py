"""Pretty-printer: render any AST node back to parseable source text.

``parse_program(pretty(p))`` yields a structurally identical program,
which the test suite verifies by round-tripping.
"""

from __future__ import annotations

from typing import List

from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Node,
    Program,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Var,
    VarDecl,
    Wait,
    While,
)

_INDENT = "  "

#: Binding strength per operator; higher binds tighter.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "=": 4,
    "#": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "mod": 6,
    "neg": 7,
}


def pretty_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing only where required."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, UnOp):
        prec = _PRECEDENCE["not" if expr.op == "not" else "neg"]
        inner = pretty_expr(expr.operand, prec)
        text = f"not {inner}" if expr.op == "not" else f"-{inner}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        # Left-associative: the right operand needs strictly higher context.
        left = pretty_expr(expr.left, prec)
        right = pretty_expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"not an expression node: {expr!r}")


def _dangles(stmt: Stmt) -> bool:
    """Would a following ``else`` be captured by this statement's text?

    True when the statement's rightmost open construct is an
    else-less ``if`` (possibly under ``while`` bodies or trailing
    ``else`` branches); ``begin``/``cobegin`` close themselves.
    """
    if isinstance(stmt, If):
        if stmt.else_branch is None:
            return True
        return _dangles(stmt.else_branch)
    if isinstance(stmt, While):
        return _dangles(stmt.body)
    return False


def _stmt_lines(stmt: Stmt, indent: int) -> List[str]:
    pad = _INDENT * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.target} := {pretty_expr(stmt.expr)}"]
    if isinstance(stmt, Skip):
        return [f"{pad}skip"]
    if isinstance(stmt, Wait):
        return [f"{pad}wait({stmt.sem})"]
    if isinstance(stmt, Signal):
        return [f"{pad}signal({stmt.sem})"]
    if isinstance(stmt, If):
        lines = [f"{pad}if {pretty_expr(stmt.cond)}", f"{pad}then"]
        if stmt.else_branch is not None and _dangles(stmt.then_branch):
            # Reparsing would attach our else to the inner if/while;
            # close the then-branch explicitly.
            lines.append(f"{pad}{_INDENT}begin")
            lines.extend(_stmt_lines(stmt.then_branch, indent + 2))
            lines.append(f"{pad}{_INDENT}end")
        else:
            lines.extend(_stmt_lines(stmt.then_branch, indent + 1))
        if stmt.else_branch is not None:
            lines.append(f"{pad}else")
            lines.extend(_stmt_lines(stmt.else_branch, indent + 1))
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while {pretty_expr(stmt.cond)} do"]
        lines.extend(_stmt_lines(stmt.body, indent + 1))
        return lines
    if isinstance(stmt, Begin):
        lines = [f"{pad}begin"]
        for i, child in enumerate(stmt.body):
            child_lines = _stmt_lines(child, indent + 1)
            if i < len(stmt.body) - 1:
                child_lines[-1] += ";"
            lines.extend(child_lines)
        lines.append(f"{pad}end")
        return lines
    if isinstance(stmt, Cobegin):
        lines = [f"{pad}cobegin"]
        for i, branch in enumerate(stmt.branches):
            if i > 0:
                lines.append(f"{pad}||")
            lines.extend(_stmt_lines(branch, indent + 1))
        lines.append(f"{pad}coend")
        return lines
    from repro.lang.procs import Call

    if isinstance(stmt, Call):
        ins = ", ".join(pretty_expr(e) for e in stmt.in_args)
        outs = ", ".join(stmt.out_args)
        if stmt.out_args:
            return [f"{pad}call {stmt.name}({ins}; {outs})"]
        return [f"{pad}call {stmt.name}({ins})"]
    raise TypeError(f"not a statement node: {stmt!r}")


def _decl_line(decl: VarDecl) -> str:
    names = ", ".join(decl.names)
    if decl.kind == "semaphore" or decl.initial != 0:
        return f"{names} : {decl.kind} initially({decl.initial});"
    return f"{names} : {decl.kind};"


def pretty(node: Node) -> str:
    """Render any node (program, statement, or expression) as source text."""
    if isinstance(node, Program):
        lines: List[str] = []
        for proc in node.procs:
            ins = ", ".join(proc.ins)
            outs = ", ".join(proc.outs)
            params = []
            if proc.ins:
                params.append(f"in {ins}")
            if proc.outs:
                params.append(f"out {outs}")
            lines.append(f"proc {proc.name}({'; '.join(params)})")
            lines.extend(_stmt_lines(proc.body, 1))
            lines.append(";")
        if node.decls:
            lines.append("var " + _decl_line(node.decls[0]))
            for decl in node.decls[1:]:
                lines.append("    " + _decl_line(decl))
        lines.extend(_stmt_lines(node.body, 0))
        return "\n".join(lines)
    if isinstance(node, VarDecl):
        return _decl_line(node)
    if isinstance(node, Stmt):
        return "\n".join(_stmt_lines(node, 0))
    if isinstance(node, Expr):
        return pretty_expr(node)
    raise TypeError(f"cannot pretty-print {node!r}")
