"""Hand-written lexer for the concurrent language.

Produces a list of :class:`~repro.lang.tokens.Token`.  Whitespace is
insignificant; ``--`` starts a comment running to end of line (the
paper predates any fixed comment syntax, so we borrow Ada's).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexError
from repro.lang.tokens import KEYWORDS, SYMBOLS, Token


class Lexer:
    """Converts source text into tokens.

    The lexer is a simple single-pass scanner; it never backtracks and
    reports the exact line/column of any illegal character.
    """

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._source[idx] if idx < len(self._source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, ending with a single ``eof`` token."""
        while True:
            self._skip_trivia()
            if self._pos >= len(self._source):
                yield Token("eof", "", self._line, self._col)
                return
            line, col = self._line, self._col
            ch = self._peek()
            if ch.isalpha() or ch == "_":
                start = self._pos
                while self._peek().isalnum() or self._peek() == "_":
                    self._advance()
                word = self._source[start : self._pos]
                kind = "keyword" if word in KEYWORDS else "ident"
                yield Token(kind, word, line, col)
                continue
            if ch.isdigit():
                start = self._pos
                while self._peek().isdigit():
                    self._advance()
                if self._peek().isalpha():
                    raise LexError(
                        f"identifier may not start with a digit: "
                        f"{self._source[start:self._pos + 1]!r}...",
                        line,
                        col,
                    )
                yield Token("int", self._source[start : self._pos], line, col)
                continue
            for sym in SYMBOLS:
                if self._source.startswith(sym, self._pos):
                    self._advance(len(sym))
                    yield Token("symbol", sym, line, col)
                    break
            else:
                raise LexError(f"illegal character {ch!r}", line, col)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` completely (including the trailing eof token)."""
    return list(Lexer(source).tokens())
