"""Abstract syntax tree for the concurrent language.

Nodes are plain classes with *identity* equality (two structurally
identical subtrees are still distinct program points — certification
and proofs attach facts to program points, not shapes).  Every node
carries a unique ``uid`` and an optional source location.

The statement forms are exactly the paper's section 2.0 language —
assignment, alternation, iteration, composition, concurrency, and the
semaphore primitives — plus ``skip`` (used for a missing ``else``) and
declarations.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

_uid_counter = itertools.count(1)


class Loc:
    """A 1-based source position; ``Loc.none()`` for synthesized nodes."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int):
        self.line = line
        self.column = column

    @staticmethod
    def none() -> "Loc":
        return Loc(0, 0)

    def __bool__(self) -> bool:
        return self.line > 0

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}" if self else "<synth>"


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("uid", "loc")

    def __init__(self, loc: Optional[Loc] = None):
        #: Unique id of this program point (stable for the node's lifetime).
        self.uid = next(_uid_counter)
        self.loc = loc if loc is not None else Loc.none()

    def children(self) -> Tuple["Node", ...]:
        """Direct child nodes, in source order."""
        return ()

    def __repr__(self) -> str:
        from repro.lang.pretty import pretty  # local import: avoid cycle

        text = pretty(self)
        if len(text) > 60:
            text = text[:57] + "..."
        return f"<{type(self).__name__} {text!r}>"


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------

#: Operators yielding integers.
ARITH_OPS = ("+", "-", "*", "/", "mod")
#: Operators comparing integers, yielding booleans.  ``#`` is the
#: paper's inequality sign.
REL_OPS = ("=", "#", "<", "<=", ">", ">=")
#: Boolean connectives.
BOOL_OPS = ("and", "or")


class Expr(Node):
    """Base class for expressions."""

    __slots__ = ()


class Var(Expr):
    """A variable reference."""

    __slots__ = ("name",)

    def __init__(self, name: str, loc: Optional[Loc] = None):
        super().__init__(loc)
        self.name = name


class IntLit(Expr):
    """An integer constant.  Constants have class ``low`` (Definition 2)."""

    __slots__ = ("value",)

    def __init__(self, value: int, loc: Optional[Loc] = None):
        super().__init__(loc)
        self.value = int(value)


class BoolLit(Expr):
    """A boolean constant (``true``/``false``)."""

    __slots__ = ("value",)

    def __init__(self, value: bool, loc: Optional[Loc] = None):
        super().__init__(loc)
        self.value = bool(value)


class BinOp(Expr):
    """``left op right`` for any arithmetic, relational or boolean ``op``.

    Per Definition 2, the class of ``e1 op e2`` is ``class(e1) (+)
    class(e2)`` regardless of which operator ``op`` is.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, loc: Optional[Loc] = None):
        super().__init__(loc)
        if op not in ARITH_OPS + REL_OPS + BOOL_OPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)


class UnOp(Expr):
    """``-e`` or ``not e``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, loc: Optional[Loc] = None):
        super().__init__(loc)
        if op not in ("-", "not"):
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""

    __slots__ = ()


class Assign(Stmt):
    """``x := e`` — executed as one indivisible action (section 2.0)."""

    __slots__ = ("target", "expr")

    def __init__(self, target: str, expr: Expr, loc: Optional[Loc] = None):
        super().__init__(loc)
        self.target = target
        self.expr = expr

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,)


class If(Stmt):
    """``if e then S1 else S2``; ``else_branch`` may be ``None``."""

    __slots__ = ("cond", "then_branch", "else_branch")

    def __init__(
        self,
        cond: Expr,
        then_branch: Stmt,
        else_branch: Optional[Stmt] = None,
        loc: Optional[Loc] = None,
    ):
        super().__init__(loc)
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch

    def children(self) -> Tuple[Node, ...]:
        if self.else_branch is None:
            return (self.cond, self.then_branch)
        return (self.cond, self.then_branch, self.else_branch)


class While(Stmt):
    """``while e do S`` — the source of global flows via non-termination."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, loc: Optional[Loc] = None):
        super().__init__(loc)
        self.cond = cond
        self.body = body

    def children(self) -> Tuple[Node, ...]:
        return (self.cond, self.body)


class Begin(Stmt):
    """``begin S1; ...; Sn end`` — sequential composition."""

    __slots__ = ("body",)

    def __init__(self, body: Sequence[Stmt], loc: Optional[Loc] = None):
        super().__init__(loc)
        self.body: List[Stmt] = list(body)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.body)


class Cobegin(Stmt):
    """``cobegin S1 || ... || Sn coend`` — concurrent execution."""

    __slots__ = ("branches",)

    def __init__(self, branches: Sequence[Stmt], loc: Optional[Loc] = None):
        super().__init__(loc)
        if len(branches) < 1:
            raise ValueError("cobegin needs at least one branch")
        self.branches: List[Stmt] = list(branches)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.branches)


class Wait(Stmt):
    """``wait(sem)``: block until the semaphore is positive, then decrement.

    Indivisible; the only statement that can block, hence the only
    source of synchronization-induced global flows.
    """

    __slots__ = ("sem",)

    def __init__(self, sem: str, loc: Optional[Loc] = None):
        super().__init__(loc)
        self.sem = sem


class Signal(Stmt):
    """``signal(sem)``: indivisibly increment the semaphore."""

    __slots__ = ("sem",)

    def __init__(self, sem: str, loc: Optional[Loc] = None):
        super().__init__(loc)
        self.sem = sem


class Skip(Stmt):
    """The empty statement; modifies nothing and produces no flows."""

    __slots__ = ()


# ----------------------------------------------------------------------
# Declarations and programs.
# ----------------------------------------------------------------------


class VarDecl(Node):
    """``x, y : integer`` or ``s : semaphore initially(0)``.

    ``kind`` is ``"integer"`` or ``"semaphore"``; ``initial`` is the
    declared initial value (defaults: 0 for both kinds).
    """

    __slots__ = ("names", "kind", "initial")

    def __init__(
        self,
        names: Sequence[str],
        kind: str,
        initial: int = 0,
        loc: Optional[Loc] = None,
    ):
        super().__init__(loc)
        if kind not in ("integer", "semaphore"):
            raise ValueError(f"unknown declaration kind {kind!r}")
        if not names:
            raise ValueError("declaration with no names")
        self.names: List[str] = list(names)
        self.kind = kind
        self.initial = int(initial)


class Program(Node):
    """A complete program: procedures, declarations, and one statement.

    ``procs`` is empty in the paper's core language; see
    :mod:`repro.lang.procs` for the procedure extension.
    """

    __slots__ = ("decls", "body", "procs", "synthetic")

    def __init__(
        self,
        decls: Sequence[VarDecl],
        body: Stmt,
        loc: Optional[Loc] = None,
        procs: Sequence[Node] = (),
        synthetic: Sequence[str] = (),
    ):
        super().__init__(loc)
        self.decls: List[VarDecl] = list(decls)
        self.body = body
        self.procs: List[Node] = list(procs)
        #: Names introduced by procedure expansion (activation record
        #: temporaries); analyses may classify these automatically.
        self.synthetic: List[str] = list(synthetic)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.procs) + tuple(self.decls) + (self.body,)

    def declared(self, kind: Optional[str] = None) -> List[str]:
        """Names declared by the program, optionally filtered by kind."""
        out = []
        for d in self.decls:
            if kind is None or d.kind == kind:
                out.extend(d.names)
        return out

    def initial_values(self) -> dict:
        """Mapping of every declared name to its initial value."""
        return {name: d.initial for d in self.decls for name in d.names}


# ----------------------------------------------------------------------
# Traversals.
# ----------------------------------------------------------------------


def iter_nodes(root: Node) -> Iterator[Node]:
    """Every node in ``root``'s subtree, preorder."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def iter_statements(root: Node) -> Iterator[Stmt]:
    """Every statement node in ``root``'s subtree, preorder."""
    for node in iter_nodes(root):
        if isinstance(node, Stmt):
            yield node


def expr_variables(expr: Expr) -> FrozenSet[str]:
    """Names of the variables referenced by ``expr``."""
    return frozenset(n.name for n in iter_nodes(expr) if isinstance(n, Var))


def used_variables(root: Node) -> FrozenSet[str]:
    """Every variable name used anywhere in ``root`` (reads, writes, semaphores)."""
    names = set()
    for node in iter_nodes(root):
        if isinstance(node, Var):
            names.add(node.name)
        elif isinstance(node, Assign):
            names.add(node.target)
        elif isinstance(node, (Wait, Signal)):
            names.add(node.sem)
    return frozenset(names)


def modified_variables(root: Node) -> FrozenSet[str]:
    """Variables *potentially modified*: assignment targets and semaphores.

    Both ``wait`` and ``signal`` modify their semaphore (Figure 2 gives
    them ``mod(S) = sbind(sem)``).
    """
    names = set()
    for node in iter_nodes(root):
        if isinstance(node, Assign):
            names.add(node.target)
        elif isinstance(node, (Wait, Signal)):
            names.add(node.sem)
    return frozenset(names)


def program_size(root: Node) -> int:
    """Number of statement nodes — the paper's "length of the program"."""
    return sum(1 for _ in iter_statements(root))


def max_nesting(root: Node) -> int:
    """Maximum statement-nesting depth (for metrics and generators)."""

    def depth(node: Node) -> int:
        child_depths = [depth(c) for c in node.children()]
        best = max(child_depths, default=0)
        return best + (1 if isinstance(node, Stmt) else 0)

    return depth(root)


def propagate_locs(root: Node) -> Node:
    """Fill in missing source positions on a synthesized subtree.

    Builder- and clone-produced nodes default to ``Loc.none()``, which
    makes every downstream diagnostic point at ``0:0``.  This repairs a
    tree in place with two passes: a node without a position first
    adopts the position of its earliest located descendant (the guard
    of a synthesized ``if``, say), and anything still unlocated then
    inherits the nearest located ancestor's position.  Returns ``root``
    for chaining.  Trees with no located node anywhere are unchanged.
    """

    def adopt_up(node: Node) -> Loc:
        first = node.loc
        for child in node.children():
            child_loc = adopt_up(child)
            if not first and child_loc:
                first = child_loc
        if not node.loc and first:
            node.loc = Loc(first.line, first.column)
        return first

    def push_down(node: Node, inherited: Loc) -> None:
        if not node.loc and inherited:
            node.loc = Loc(inherited.line, inherited.column)
        for child in node.children():
            push_down(child, node.loc)

    adopt_up(root)
    push_down(root, root.loc)
    return root
