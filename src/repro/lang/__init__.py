"""The paper's simple concurrent programming language (section 2.0).

Statements: assignment, alternation (``if``/``then``/``else``),
iteration (``while``/``do``), composition (``begin``...``end``),
concurrency (``cobegin``...``coend`` with ``||`` separators), and the
semaphore primitives ``wait``/``signal``.  We additionally support
``skip``, an optional ``else`` branch, ``var`` declaration blocks with
``integer`` and ``semaphore initially(n)`` types, and ``--`` comments.

The package provides the lexer, a recursive-descent parser producing a
typed AST, a pretty-printer (the parser and printer round-trip), a
programmatic builder DSL, and a static validator.
"""

from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Node,
    Program,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Var,
    VarDecl,
    Wait,
    While,
    expr_variables,
    iter_nodes,
    iter_statements,
    program_size,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_expression, parse_program, parse_statement
from repro.lang.pretty import pretty
from repro.lang.validate import validate_program

__all__ = [
    "Node",
    "Expr",
    "Var",
    "IntLit",
    "BoolLit",
    "BinOp",
    "UnOp",
    "Stmt",
    "Assign",
    "If",
    "While",
    "Begin",
    "Cobegin",
    "Wait",
    "Signal",
    "Skip",
    "VarDecl",
    "Program",
    "expr_variables",
    "iter_nodes",
    "iter_statements",
    "program_size",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "parse_statement",
    "parse_expression",
    "pretty",
    "validate_program",
]
