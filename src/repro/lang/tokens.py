"""Token definitions for the concurrent language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


#: Reserved words of the language.  ``mod`` is the modulo operator;
#: ``initially`` appears only in semaphore declarations.
KEYWORDS = frozenset(
    {
        "var",
        "integer",
        "semaphore",
        "initially",
        "begin",
        "end",
        "if",
        "then",
        "else",
        "while",
        "do",
        "cobegin",
        "coend",
        "wait",
        "signal",
        "skip",
        "proc",
        "call",
        # "in" and "out" are contextual (parameter-section markers only),
        # so programs may still use them as variable names.
        "true",
        "false",
        "and",
        "or",
        "not",
        "mod",
    }
)

#: Multi-character symbols, longest first so the lexer is greedy.
SYMBOLS = (
    ":=",
    "||",
    "<=",
    ">=",
    "<",
    ">",
    "=",
    "#",
    "+",
    "-",
    "*",
    "/",
    "(",
    ")",
    ";",
    ",",
    ":",
)


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``"ident"``, ``"int"``, ``"keyword"``,
    ``"symbol"``, or ``"eof"``; ``value`` is the lexeme text (``""`` for
    eof).  ``line`` and ``column`` are 1-based source coordinates.
    """

    kind: str
    value: str
    line: int
    column: int

    def is_keyword(self, word: Optional[str] = None) -> bool:
        """True if this token is a keyword (optionally a specific one)."""
        return self.kind == "keyword" and (word is None or self.value == word)

    def is_symbol(self, sym: Optional[str] = None) -> bool:
        """True if this token is a symbol (optionally a specific one)."""
        return self.kind == "symbol" and (sym is None or self.value == sym)

    def describe(self) -> str:
        """Human-readable description for error messages."""
        if self.kind == "eof":
            return "end of input"
        return f"{self.kind} {self.value!r}"
