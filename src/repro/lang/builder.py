"""Programmatic AST construction DSL.

The parser is the main front door, but generators, tests, and users who
build programs dynamically want a terse Python API::

    from repro.lang import builder as b

    prog = b.program(
        [b.int_decl("x", "y"), b.sem_decl("s")],
        b.begin(
            b.if_(b.ne(b.var("x"), b.lit(0)), b.signal("s")),
            b.wait("s"),
            b.assign("y", b.lit(1)),
        ),
    )

All constructors return ordinary AST nodes, so builder output and parser
output are interchangeable everywhere.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.lang.ast import (
    Assign,
    Loc,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Loc,
    Program,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Var,
    VarDecl,
    Wait,
    While,
)

ExprLike = Union[Expr, int, bool, str]
LocLike = Union[Loc, Tuple[int, int], None]


def _at(node, loc: LocLike):
    """Attach an explicit position, or adopt the first located child.

    Builder output used to carry ``Loc.none()`` everywhere, which turned
    every diagnostic on generated programs into ``0:0``; adopting child
    positions lets mixed parser/builder trees keep meaningful spans.
    """
    if loc is not None:
        node.loc = loc if isinstance(loc, Loc) else Loc(loc[0], loc[1])
    elif not node.loc:
        for child in node.children():
            if child.loc:
                node.loc = Loc(child.loc.line, child.loc.column)
                break
    return node


def _expr(x: ExprLike) -> Expr:
    """Coerce Python values: str -> Var, bool -> BoolLit, int -> IntLit."""
    if isinstance(x, Expr):
        return x
    if isinstance(x, bool):
        return BoolLit(x)
    if isinstance(x, int):
        return IntLit(x)
    if isinstance(x, str):
        return Var(x)
    raise TypeError(f"cannot use {x!r} as an expression")


# -- expressions -------------------------------------------------------


def var(name: str, loc: LocLike = None) -> Var:
    """A variable reference."""
    return _at(Var(name), loc)


def lit(value: Union[int, bool], loc: LocLike = None) -> Expr:
    """An integer or boolean constant."""
    return _at(BoolLit(value) if isinstance(value, bool) else IntLit(value), loc)


def add(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("+", _expr(a), _expr(b)), loc)


def sub(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("-", _expr(a), _expr(b)), loc)


def mul(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("*", _expr(a), _expr(b)), loc)


def div(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("/", _expr(a), _expr(b)), loc)


def mod(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("mod", _expr(a), _expr(b)), loc)


def neg(a: ExprLike, loc: LocLike = None) -> UnOp:
    return _at(UnOp("-", _expr(a)), loc)


def eq(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    """``a = b``."""
    return _at(BinOp("=", _expr(a), _expr(b)), loc)


def ne(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    """``a # b`` (the paper's inequality)."""
    return _at(BinOp("#", _expr(a), _expr(b)), loc)


def lt(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("<", _expr(a), _expr(b)), loc)


def le(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("<=", _expr(a), _expr(b)), loc)


def gt(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp(">", _expr(a), _expr(b)), loc)


def ge(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp(">=", _expr(a), _expr(b)), loc)


def and_(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("and", _expr(a), _expr(b)), loc)


def or_(a: ExprLike, b: ExprLike, loc: LocLike = None) -> BinOp:
    return _at(BinOp("or", _expr(a), _expr(b)), loc)


def not_(a: ExprLike, loc: LocLike = None) -> UnOp:
    return _at(UnOp("not", _expr(a)), loc)


# -- statements --------------------------------------------------------


def assign(target: str, value: ExprLike, loc: LocLike = None) -> Assign:
    """``target := value``."""
    return _at(Assign(target, _expr(value)), loc)


def if_(
    cond: ExprLike,
    then_branch: Stmt,
    else_branch: Stmt = None,
    loc: LocLike = None,
) -> If:
    """``if cond then S1 [else S2]``."""
    return _at(If(_expr(cond), then_branch, else_branch), loc)


def while_(cond: ExprLike, body: Stmt, loc: LocLike = None) -> While:
    """``while cond do body``."""
    return _at(While(_expr(cond), body), loc)


def begin(*stmts: Stmt, loc: LocLike = None) -> Begin:
    """``begin S1; ...; Sn end``."""
    return _at(Begin(list(stmts)), loc)


def cobegin(*branches: Stmt, loc: LocLike = None) -> Cobegin:
    """``cobegin S1 || ... || Sn coend``."""
    return _at(Cobegin(list(branches)), loc)


def wait(sem: str, loc: LocLike = None) -> Wait:
    return _at(Wait(sem), loc)


def signal(sem: str, loc: LocLike = None) -> Signal:
    return _at(Signal(sem), loc)


def skip(loc: LocLike = None) -> Skip:
    return _at(Skip(), loc)


# -- declarations and programs ------------------------------------------


def int_decl(*names: str, initially: int = 0, loc: LocLike = None) -> VarDecl:
    """Declare integer variables."""
    return _at(VarDecl(list(names), "integer", initially), loc)


def sem_decl(*names: str, initially: int = 0, loc: LocLike = None) -> VarDecl:
    """Declare semaphores."""
    return _at(VarDecl(list(names), "semaphore", initially), loc)


def program(decls: Sequence[VarDecl], body: Stmt, loc: LocLike = None) -> Program:
    """A complete program."""
    return _at(Program(list(decls), body), loc)
