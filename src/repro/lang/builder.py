"""Programmatic AST construction DSL.

The parser is the main front door, but generators, tests, and users who
build programs dynamically want a terse Python API::

    from repro.lang import builder as b

    prog = b.program(
        [b.int_decl("x", "y"), b.sem_decl("s")],
        b.begin(
            b.if_(b.ne(b.var("x"), b.lit(0)), b.signal("s")),
            b.wait("s"),
            b.assign("y", b.lit(1)),
        ),
    )

All constructors return ordinary AST nodes, so builder output and parser
output are interchangeable everywhere.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Program,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Var,
    VarDecl,
    Wait,
    While,
)

ExprLike = Union[Expr, int, bool, str]


def _expr(x: ExprLike) -> Expr:
    """Coerce Python values: str -> Var, bool -> BoolLit, int -> IntLit."""
    if isinstance(x, Expr):
        return x
    if isinstance(x, bool):
        return BoolLit(x)
    if isinstance(x, int):
        return IntLit(x)
    if isinstance(x, str):
        return Var(x)
    raise TypeError(f"cannot use {x!r} as an expression")


# -- expressions -------------------------------------------------------


def var(name: str) -> Var:
    """A variable reference."""
    return Var(name)


def lit(value: Union[int, bool]) -> Expr:
    """An integer or boolean constant."""
    return BoolLit(value) if isinstance(value, bool) else IntLit(value)


def add(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("+", _expr(a), _expr(b))


def sub(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("-", _expr(a), _expr(b))


def mul(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("*", _expr(a), _expr(b))


def div(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("/", _expr(a), _expr(b))


def mod(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("mod", _expr(a), _expr(b))


def neg(a: ExprLike) -> UnOp:
    return UnOp("-", _expr(a))


def eq(a: ExprLike, b: ExprLike) -> BinOp:
    """``a = b``."""
    return BinOp("=", _expr(a), _expr(b))


def ne(a: ExprLike, b: ExprLike) -> BinOp:
    """``a # b`` (the paper's inequality)."""
    return BinOp("#", _expr(a), _expr(b))


def lt(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("<", _expr(a), _expr(b))


def le(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("<=", _expr(a), _expr(b))


def gt(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp(">", _expr(a), _expr(b))


def ge(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp(">=", _expr(a), _expr(b))


def and_(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("and", _expr(a), _expr(b))


def or_(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("or", _expr(a), _expr(b))


def not_(a: ExprLike) -> UnOp:
    return UnOp("not", _expr(a))


# -- statements --------------------------------------------------------


def assign(target: str, value: ExprLike) -> Assign:
    """``target := value``."""
    return Assign(target, _expr(value))


def if_(cond: ExprLike, then_branch: Stmt, else_branch: Stmt = None) -> If:
    """``if cond then S1 [else S2]``."""
    return If(_expr(cond), then_branch, else_branch)


def while_(cond: ExprLike, body: Stmt) -> While:
    """``while cond do body``."""
    return While(_expr(cond), body)


def begin(*stmts: Stmt) -> Begin:
    """``begin S1; ...; Sn end``."""
    return Begin(list(stmts))


def cobegin(*branches: Stmt) -> Cobegin:
    """``cobegin S1 || ... || Sn coend``."""
    return Cobegin(list(branches))


def wait(sem: str) -> Wait:
    return Wait(sem)


def signal(sem: str) -> Signal:
    return Signal(sem)


def skip() -> Skip:
    return Skip()


# -- declarations and programs ------------------------------------------


def int_decl(*names: str, initially: int = 0) -> VarDecl:
    """Declare integer variables."""
    return VarDecl(list(names), "integer", initially)


def sem_decl(*names: str, initially: int = 0) -> VarDecl:
    """Declare semaphores."""
    return VarDecl(list(names), "semaphore", initially)


def program(decls: Sequence[VarDecl], body: Stmt) -> Program:
    """A complete program."""
    return Program(list(decls), body)
