"""Deep-copying and variable renaming of AST subtrees.

AST nodes have identity semantics (facts attach to program points), so
reusing a subtree in two places would corrupt per-node tables; any
duplication must be a deep copy with fresh uids.  Renaming maps
variable names (reads, assignment targets, and semaphore operands)
through a substitution — the workhorse of procedure expansion.
"""

from __future__ import annotations

from typing import Mapping, Optional, TypeVar, Union

from repro.errors import LanguageError
from repro.lang.ast import (
    Assign,
    Begin,
    BinOp,
    BoolLit,
    Cobegin,
    Expr,
    If,
    IntLit,
    Loc,
    Signal,
    Skip,
    Stmt,
    UnOp,
    Var,
    Wait,
    While,
)

NodeT = TypeVar("NodeT", bound=Union[Expr, Stmt])


def clone_expr(
    expr: Expr,
    rename: Optional[Mapping[str, str]] = None,
    default_loc: Optional[Loc] = None,
) -> Expr:
    """A fresh deep copy of ``expr``, applying the variable renaming.

    ``default_loc`` stands in for nodes that have no position of their
    own (builder-constructed subtrees), so expansions can point their
    synthesized code at the call site instead of ``0:0``.
    """
    rename = rename or {}
    if isinstance(expr, Var):
        return Var(rename.get(expr.name, expr.name), _loc(expr, default_loc))
    if isinstance(expr, IntLit):
        return IntLit(expr.value, _loc(expr, default_loc))
    if isinstance(expr, BoolLit):
        return BoolLit(expr.value, _loc(expr, default_loc))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, clone_expr(expr.operand, rename, default_loc), _loc(expr, default_loc))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            clone_expr(expr.left, rename, default_loc),
            clone_expr(expr.right, rename, default_loc),
            _loc(expr, default_loc),
        )
    raise LanguageError(f"cannot clone expression {expr!r}")


def clone_stmt(
    stmt: Stmt,
    rename: Optional[Mapping[str, str]] = None,
    default_loc: Optional[Loc] = None,
) -> Stmt:
    """A fresh deep copy of ``stmt``, applying the variable renaming.

    ``default_loc`` fills in positions for unlocated nodes, exactly as
    in :func:`clone_expr`.
    """
    rename = rename or {}
    if isinstance(stmt, Assign):
        return Assign(
            rename.get(stmt.target, stmt.target),
            clone_expr(stmt.expr, rename, default_loc),
            _loc(stmt, default_loc),
        )
    if isinstance(stmt, Skip):
        return Skip(_loc(stmt, default_loc))
    if isinstance(stmt, Wait):
        return Wait(rename.get(stmt.sem, stmt.sem), _loc(stmt, default_loc))
    if isinstance(stmt, Signal):
        return Signal(rename.get(stmt.sem, stmt.sem), _loc(stmt, default_loc))
    if isinstance(stmt, If):
        return If(
            clone_expr(stmt.cond, rename, default_loc),
            clone_stmt(stmt.then_branch, rename, default_loc),
            clone_stmt(stmt.else_branch, rename, default_loc) if stmt.else_branch else None,
            _loc(stmt, default_loc),
        )
    if isinstance(stmt, While):
        return While(
            clone_expr(stmt.cond, rename, default_loc),
            clone_stmt(stmt.body, rename, default_loc),
            _loc(stmt, default_loc),
        )
    if isinstance(stmt, Begin):
        return Begin([clone_stmt(s, rename, default_loc) for s in stmt.body], _loc(stmt, default_loc))
    if isinstance(stmt, Cobegin):
        return Cobegin([clone_stmt(s, rename, default_loc) for s in stmt.branches], _loc(stmt, default_loc))
    # Procedure calls are cloned by the expansion pass itself; anything
    # else here is a bug.
    from repro.lang.procs import Call

    if isinstance(stmt, Call):
        return Call(
            stmt.name,
            [clone_expr(e, rename, default_loc) for e in stmt.in_args],
            [rename.get(v, v) for v in stmt.out_args],
            _loc(stmt, default_loc),
        )
    raise LanguageError(f"cannot clone statement {stmt!r}")


def _loc(node, default: Optional[Loc] = None) -> Loc:
    if node.loc:
        return Loc(node.loc.line, node.loc.column)
    if default:
        return Loc(default.line, default.column)
    return Loc.none()
