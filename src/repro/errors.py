"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Sub-hierarchies
mirror the subsystems: lattice construction, language processing (lexing,
parsing, validation), certification, flow-logic proof checking, and the
concurrent runtime.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class LatticeError(ReproError):
    """A security-classification scheme is malformed or misused."""


class NotALatticeError(LatticeError):
    """The supplied order is not a complete lattice (Definition 1)."""


class ElementError(LatticeError):
    """An element does not belong to the lattice it was used with."""


class LanguageError(ReproError):
    """Base class for lexing, parsing, and validation failures.

    Carries an optional source location so tooling can point at the
    offending text.
    """

    def __init__(self, message: str, line: Optional[int] = None, column: Optional[int] = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{line}:{column if column is not None else '?'}: {message}"
        super().__init__(message)


class LexError(LanguageError):
    """The source text contains an illegal character or token."""


class ParseError(LanguageError):
    """The token stream does not form a legal program."""


class ValidationError(LanguageError):
    """The program is syntactically legal but statically ill-formed.

    Examples: use of an undeclared variable, a ``wait`` on an integer
    variable, or an assignment to a semaphore.
    """


class BindingError(ReproError):
    """A static binding (Definition 3) is incomplete or inconsistent."""


class CertificationError(ReproError):
    """Raised when a certification API is misused (not on mere rejection).

    Rejection of a program is a normal result and is reported through
    :class:`repro.core.cfm.CertificationReport`, never as an exception.
    """


class InferenceError(ReproError):
    """Binding inference failed (e.g. the fixed bindings are unsatisfiable)."""


class LogicError(ReproError):
    """Base class for flow-logic failures."""


class AssertionFormError(LogicError):
    """A flow assertion does not have the required {V, L, G} shape."""


class ProofError(LogicError):
    """A proof tree is structurally invalid or a rule is misapplied."""


class EntailmentError(LogicError):
    """The entailment engine was given a query outside its fragment."""


class GenerationError(LogicError):
    """Theorem-1 proof generation failed.

    This is raised when the generator is asked to build a completely
    invariant proof for a program that CFM does not certify; Theorem 1
    only guarantees proofs for certified programs.
    """


class RuntimeFault(ReproError):
    """Base class for concurrent-runtime failures."""


class UndefinedVariableError(RuntimeFault):
    """A process read or wrote a variable missing from the store."""


class SemaphoreError(RuntimeFault):
    """A semaphore operation was applied to a non-semaphore value."""


class DeadlockError(RuntimeFault):
    """Every live process is blocked on a ``wait``; execution cannot proceed."""

    def __init__(self, message: str, blocked: Optional[tuple] = None):
        super().__init__(message)
        #: Names/ids of the blocked processes, if known.
        self.blocked = tuple(blocked) if blocked else ()


class StepLimitExceeded(RuntimeFault):
    """Execution exceeded the configured step budget (possible divergence)."""


class ExplorationLimitExceeded(RuntimeFault):
    """The interleaving explorer exceeded its state or depth budget."""
