"""Parsing classification schemes from small text specifications.

Users bring their own lattices (Definition 1 only requires a complete
lattice); this module reads two spec styles::

    # a chain, bottom to top
    chain: public < internal < secret < topsecret

    # or an arbitrary finite lattice by covering pairs
    elements: bot, left, right, top
    order: bot < left, bot < right, left < top, right < top

Lines starting with ``#`` are comments.  The resulting scheme is
validated against the complete-lattice axioms, so a malformed order is
rejected with an explanation instead of silently mis-certifying.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import LatticeError
from repro.lattice.base import Lattice
from repro.lattice.chain import ChainLattice
from repro.lattice.finite import FiniteLattice


def parse_scheme(text: str, name: str = "custom") -> Lattice:
    """Parse a scheme specification (see module docstring)."""
    chain_labels: List[str] = []
    elements: List[str] = []
    order: List[Tuple[str, str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        key, sep, rest = line.partition(":")
        if not sep:
            raise LatticeError(f"scheme spec line has no 'key:': {raw!r}")
        key = key.strip().lower()
        if key == "chain":
            chain_labels = [label.strip() for label in rest.split("<")]
            if any(not label for label in chain_labels):
                raise LatticeError(f"empty label in chain spec: {raw!r}")
        elif key == "elements":
            elements = [e.strip() for e in rest.split(",") if e.strip()]
        elif key == "order":
            for pair in rest.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                lo, sep2, hi = pair.partition("<")
                if not sep2 or not lo.strip() or not hi.strip():
                    raise LatticeError(f"order pair must be 'a < b': {pair!r}")
                order.append((lo.strip(), hi.strip()))
        else:
            raise LatticeError(f"unknown scheme spec key {key!r}")

    if chain_labels and (elements or order):
        raise LatticeError("give either 'chain:' or 'elements:'/'order:', not both")
    if chain_labels:
        scheme: Lattice = ChainLattice(chain_labels, name=name)
    elif elements:
        scheme = FiniteLattice(elements, order, name=name)
    else:
        raise LatticeError("the scheme spec declares no elements")
    scheme.validate()
    return scheme


def load_scheme(path: str, name: str = None) -> Lattice:
    """Read and parse a scheme spec file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_scheme(text, name=name or path)
