"""Rendering helpers for classification schemes.

Pure-text output only (no graphviz dependency): covering-relation
(Hasse) edges, a DOT document that external tooling can render, and a
compact ASCII listing of the order by rank.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lattice.base import Element, Lattice


def hasse_edges(lattice: Lattice) -> List[Tuple[Element, Element]]:
    """Covering pairs ``(a, b)`` with ``a < b`` and nothing strictly between."""
    edges = []
    for a in lattice.elements:
        for b in lattice.elements:
            if lattice.covers(a, b):
                edges.append((a, b))
    edges.sort(key=lambda e: (repr(e[0]), repr(e[1])))
    return edges


def _label(x: Element) -> str:
    if isinstance(x, frozenset):
        return "{" + ",".join(sorted(map(str, x))) + "}"
    if isinstance(x, tuple):
        return "(" + ", ".join(_label(c) for c in x) + ")"
    return str(x)


def to_dot(lattice: Lattice, graph_name: str = "scheme") -> str:
    """A DOT digraph of the Hasse diagram, edges pointing upward."""
    lines = [f"digraph {graph_name} {{", "  rankdir=BT;"]
    names: Dict[Element, str] = {}
    for i, x in enumerate(sorted(lattice.elements, key=repr)):
        names[x] = f"n{i}"
        lines.append(f'  n{i} [label="{_label(x)}"];')
    for a, b in hasse_edges(lattice):
        lines.append(f"  {names[a]} -> {names[b]};")
    lines.append("}")
    return "\n".join(lines)


def ascii_order(lattice: Lattice) -> str:
    """Elements grouped by height (longest chain from bottom), one level per line."""
    height: Dict[Element, int] = {}
    remaining = set(lattice.elements)
    level = 0
    while remaining:
        layer = {
            x
            for x in remaining
            if all(y in height for y in lattice.elements if lattice.lt(y, x))
        }
        if not layer:  # cyclic order would already have failed validation
            layer = set(remaining)
        for x in layer:
            height[x] = level
        remaining -= layer
        level += 1
    lines = []
    for lvl in range(level - 1, -1, -1):
        members = sorted((x for x, h in height.items() if h == lvl), key=repr)
        lines.append("  " + "   ".join(_label(x) for x in members))
    return "\n".join(lines)
