"""Arbitrary finite lattices defined by an explicit order relation.

Useful for schemes that are neither chains nor products — e.g. the
"diamond" ``low < {left, right} < high`` often used to exercise
incomparable classes — and for property-based testing against randomly
generated lattices.

Construction takes the carrier plus either covering pairs or arbitrary
``a <= b`` pairs; the reflexive-transitive closure is computed, the
complete-lattice axioms are verified, and join/meet tables are
precomputed so the operations run in O(1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.errors import LatticeError, NotALatticeError
from repro.lattice.base import Element, Lattice


class FiniteLattice(Lattice):
    """A finite lattice from an explicit partial order.

    ``order`` is an iterable of pairs ``(a, b)`` meaning ``a <= b``;
    reflexivity and transitivity are closed off automatically.  Raises
    :class:`~repro.errors.NotALatticeError` at construction time if the
    resulting order is not a complete lattice (Definition 1 requires a
    complete lattice, so this check is not optional).
    """

    def __init__(
        self,
        elements: Sequence[Element],
        order: Iterable[Tuple[Element, Element]],
        name: str = "finite",
    ):
        if not elements:
            raise LatticeError("a lattice needs at least one element")
        if len(set(elements)) != len(elements):
            raise LatticeError("lattice elements must be distinct")
        self.name = name
        self._elements = frozenset(elements)
        self._index: Dict[Element, int] = {x: i for i, x in enumerate(elements)}
        n = len(elements)
        self._order_list = list(elements)

        # Reachability matrix, closed under reflexivity and transitivity.
        leq = [[False] * n for _ in range(n)]
        for i in range(n):
            leq[i][i] = True
        for a, b in order:
            if a not in self._index or b not in self._index:
                raise LatticeError(f"order pair ({a!r}, {b!r}) mentions unknown elements")
            leq[self._index[a]][self._index[b]] = True
        for k in range(n):  # Floyd-Warshall style transitive closure
            lk = leq[k]
            for i in range(n):
                if leq[i][k]:
                    li = leq[i]
                    for j in range(n):
                        if lk[j]:
                            li[j] = True
        for i in range(n):
            for j in range(n):
                if i != j and leq[i][j] and leq[j][i]:
                    raise NotALatticeError(
                        f"{name}: cycle between {self._order_list[i]!r} and {self._order_list[j]!r}"
                    )
        self._leq = leq

        # Precompute join and meet tables; fail if a pair lacks a lub/glb.
        self._join_table: Dict[Tuple[int, int], int] = {}
        self._meet_table: Dict[Tuple[int, int], int] = {}
        for i in range(n):
            for j in range(n):
                self._join_table[(i, j)] = self._bound(i, j, upper=True)
                self._meet_table[(i, j)] = self._bound(i, j, upper=False)

    def _bound(self, i: int, j: int, upper: bool) -> int:
        n = len(self._order_list)
        if upper:
            candidates = [k for k in range(n) if self._leq[i][k] and self._leq[j][k]]
        else:
            candidates = [k for k in range(n) if self._leq[k][i] and self._leq[k][j]]
        best: Optional[int] = None
        for k in candidates:
            if best is None:
                best = k
                continue
            if (upper and self._leq[k][best]) or (not upper and self._leq[best][k]):
                best = k
        if best is None:
            kind = "upper" if upper else "lower"
            raise NotALatticeError(
                f"{self.name}: no common {kind} bound of "
                f"{self._order_list[i]!r} and {self._order_list[j]!r}"
            )
        # best must actually be least/greatest, not merely minimal/maximal.
        for k in candidates:
            ok = self._leq[best][k] if upper else self._leq[k][best]
            if not ok:
                kind = "least upper" if upper else "greatest lower"
                raise NotALatticeError(
                    f"{self.name}: {self._order_list[i]!r} and {self._order_list[j]!r} "
                    f"have no {kind} bound"
                )
        return best

    @property
    def elements(self) -> FrozenSet[Element]:
        return self._elements

    def leq(self, a: Element, b: Element) -> bool:
        self.check(a)
        self.check(b)
        return self._leq[self._index[a]][self._index[b]]

    def join(self, a: Element, b: Element) -> Element:
        self.check(a)
        self.check(b)
        return self._order_list[self._join_table[(self._index[a], self._index[b])]]

    def meet(self, a: Element, b: Element) -> Element:
        self.check(a)
        self.check(b)
        return self._order_list[self._meet_table[(self._index[a], self._index[b])]]


def diamond() -> FiniteLattice:
    """The four-point diamond: low < left, right < high (left, right incomparable)."""
    return FiniteLattice(
        ["low", "left", "right", "high"],
        [("low", "left"), ("low", "right"), ("left", "high"), ("right", "high")],
        name="diamond",
    )
