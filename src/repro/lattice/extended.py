"""The paper's extended classification scheme (Definition 4).

CFM needs a way to say "this statement produces *no* global flow".  The
paper adjoins a fresh element ``nil`` strictly below every class of the
base scheme:

    C = C' u {nil},   x <= y  iff  (x, y in C' and x <=' y) or x = nil.

``flow(S) = nil`` then makes every check of the form ``flow(S) <= mod(S)``
vacuously true, and ``nil`` is the identity of join, so flows combine
correctly through composition.
"""

from __future__ import annotations

from typing import Any, FrozenSet

from repro.lattice.base import Element, Lattice


class Nil:
    """The unique ``nil`` element adjoined by Definition 4.

    A process-wide singleton (:data:`NIL`); compares equal only to
    itself and prints as ``nil``.
    """

    _instance = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "nil"

    def __reduce__(self):  # keep the singleton under pickling
        return (Nil, ())


#: The singleton ``nil`` element.
NIL = Nil()


class ExtendedLattice(Lattice):
    """The base scheme with :data:`NIL` adjoined as a new bottom.

    All base elements keep their order; ``nil <= x`` for every ``x``.
    ``join(nil, x) = x`` and ``meet(nil, x) = nil``.  The top is the
    base top (``high``); the bottom is ``nil``.
    """

    def __init__(self, base: Lattice):
        if NIL in base.elements:
            # Extending twice would make the bottom ambiguous; Definition
            # 4 requires nil to be fresh ("where nil is not in C'").
            from repro.errors import LatticeError

            raise LatticeError(f"{base.name} already contains nil; cannot extend again")
        self.name = f"extended({base.name})"
        self._base = base
        self._elements = base.elements | {NIL}

    @property
    def base(self) -> Lattice:
        """The underlying scheme ``(C', <=')``."""
        return self._base

    @property
    def elements(self) -> FrozenSet[Element]:
        return self._elements

    def is_nil(self, x: Any) -> bool:
        """Return ``True`` iff ``x`` is the adjoined ``nil``."""
        return x is NIL or isinstance(x, Nil)

    def leq(self, a: Element, b: Element) -> bool:
        self.check(a)
        self.check(b)
        if self.is_nil(a):
            return True
        if self.is_nil(b):
            return False
        return self._base.leq(a, b)

    def join(self, a: Element, b: Element) -> Element:
        self.check(a)
        self.check(b)
        if self.is_nil(a):
            return b
        if self.is_nil(b):
            return a
        return self._base.join(a, b)

    def meet(self, a: Element, b: Element) -> Element:
        self.check(a)
        self.check(b)
        if self.is_nil(a) or self.is_nil(b):
            return NIL
        return self._base.meet(a, b)

    @property
    def top(self) -> Element:
        return self._base.top

    @property
    def bottom(self) -> Element:
        return NIL
