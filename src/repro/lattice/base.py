"""Abstract complete-lattice interface (paper Definition 1).

A security classification scheme is a *complete lattice* ``(C, <=)``:
a finite partially ordered set in which every subset has a least upper
bound (``join``, the paper's ``(+)``) and a greatest lower bound
(``meet``, the paper's ``(x)``).  ``high`` denotes the maximum element
and ``low`` the minimum.

Concrete schemes implement :meth:`Lattice.leq`, :meth:`Lattice.join`,
:meth:`Lattice.meet`, and expose their carrier set through
:attr:`Lattice.elements`.  Everything else (n-ary joins/meets, axiom
validation, comparability queries) is provided generically here.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, FrozenSet, Hashable, Iterable, Iterator, List, Tuple

from repro.errors import ElementError, NotALatticeError

Element = Hashable


class Lattice(ABC):
    """A finite complete lattice of security classes.

    Elements may be any hashable Python values; each concrete subclass
    documents its carrier.  All operations raise
    :class:`~repro.errors.ElementError` when given a value outside the
    carrier, so programming errors surface immediately instead of
    silently producing wrong certifications.
    """

    #: Human-readable name of the scheme (subclasses may override).
    name: str = "lattice"

    # ------------------------------------------------------------------
    # Abstract core.
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def elements(self) -> FrozenSet[Element]:
        """The carrier set ``C``."""

    @abstractmethod
    def leq(self, a: Element, b: Element) -> bool:
        """Return ``True`` iff ``a <= b`` in the scheme's partial order."""

    @abstractmethod
    def join(self, a: Element, b: Element) -> Element:
        """Least upper bound of ``a`` and ``b`` (the paper's ``(+)``)."""

    @abstractmethod
    def meet(self, a: Element, b: Element) -> Element:
        """Greatest lower bound of ``a`` and ``b`` (the paper's ``(x)``)."""

    # ------------------------------------------------------------------
    # Distinguished elements.
    # ------------------------------------------------------------------

    @property
    def top(self) -> Element:
        """The maximum element (the paper's ``high``)."""
        return self.join_all(self.elements)

    @property
    def bottom(self) -> Element:
        """The minimum element (the paper's ``low``)."""
        return self.meet_all(self.elements)

    # ------------------------------------------------------------------
    # Derived operations.
    # ------------------------------------------------------------------

    def contains(self, x: Any) -> bool:
        """Return ``True`` iff ``x`` belongs to the carrier."""
        try:
            return x in self.elements
        except TypeError:  # unhashable value can never be an element
            return False

    def check(self, x: Any) -> Element:
        """Return ``x`` unchanged, or raise :class:`ElementError`."""
        if not self.contains(x):
            raise ElementError(f"{x!r} is not an element of {self.name}")
        return x

    def join_all(self, xs: Iterable[Element]) -> Element:
        """Least upper bound of ``xs``; the empty join is ``bottom``.

        The empty case is computed without recursing through
        :attr:`bottom` (which itself folds over the carrier).
        """
        result = None
        seen = False
        for x in xs:
            self.check(x)
            result = x if not seen else self.join(result, x)
            seen = True
        if not seen:
            return self.meet_all_nonempty(self.elements)
        return result

    def meet_all(self, xs: Iterable[Element]) -> Element:
        """Greatest lower bound of ``xs``; the empty meet is ``top``.

        The empty meet being ``top`` is what makes ``mod(S)`` of a
        statement that modifies nothing (``skip``) impose no constraint.
        """
        result = None
        seen = False
        for x in xs:
            self.check(x)
            result = x if not seen else self.meet(result, x)
            seen = True
        if not seen:
            return self.join_all_nonempty(self.elements)
        return result

    def join_all_nonempty(self, xs: Iterable[Element]) -> Element:
        """``join_all`` for iterables known to be non-empty."""
        it = iter(xs)
        try:
            result = self.check(next(it))
        except StopIteration:
            raise ElementError("join_all_nonempty requires at least one element") from None
        for x in it:
            result = self.join(result, self.check(x))
        return result

    def meet_all_nonempty(self, xs: Iterable[Element]) -> Element:
        """``meet_all`` for iterables known to be non-empty."""
        it = iter(xs)
        try:
            result = self.check(next(it))
        except StopIteration:
            raise ElementError("meet_all_nonempty requires at least one element") from None
        for x in it:
            result = self.meet(result, self.check(x))
        return result

    def lt(self, a: Element, b: Element) -> bool:
        """Strict order: ``a <= b`` and ``a != b``."""
        return a != b and self.leq(a, b)

    def comparable(self, a: Element, b: Element) -> bool:
        """Return ``True`` iff ``a <= b`` or ``b <= a``."""
        return self.leq(a, b) or self.leq(b, a)

    def equivalent(self, a: Element, b: Element) -> bool:
        """Order-equivalence (mutual ``leq``); equality for honest posets."""
        return self.leq(a, b) and self.leq(b, a)

    def upper_set(self, a: Element) -> FrozenSet[Element]:
        """All elements ``x`` with ``a <= x``."""
        self.check(a)
        return frozenset(x for x in self.elements if self.leq(a, x))

    def lower_set(self, a: Element) -> FrozenSet[Element]:
        """All elements ``x`` with ``x <= a``."""
        self.check(a)
        return frozenset(x for x in self.elements if self.leq(x, a))

    def covers(self, a: Element, b: Element) -> bool:
        """Return ``True`` iff ``b`` covers ``a`` (a < b with nothing between)."""
        if not self.lt(a, b):
            return False
        return not any(self.lt(a, z) and self.lt(z, b) for z in self.elements)

    def iter_pairs(self) -> Iterator[Tuple[Element, Element]]:
        """All ordered pairs of elements (for validation and testing)."""
        elems = list(self.elements)
        return itertools.product(elems, elems)

    # ------------------------------------------------------------------
    # Axiom validation.
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Verify the complete-lattice axioms, raising on violation.

        Checks, over the full carrier: partial-order axioms for
        :meth:`leq`; that :meth:`join`/:meth:`meet` return genuine least
        upper / greatest lower bounds; and closure of the operations.
        Cost is cubic in ``len(elements)`` — intended for construction
        time and tests, not hot paths.
        """
        elems: List[Element] = list(self.elements)
        if not elems:
            raise NotALatticeError(f"{self.name}: empty carrier")
        for a in elems:
            if not self.leq(a, a):
                raise NotALatticeError(f"{self.name}: leq not reflexive at {a!r}")
        for a, b in self.iter_pairs():
            if self.leq(a, b) and self.leq(b, a) and a != b:
                raise NotALatticeError(f"{self.name}: leq not antisymmetric on {a!r}, {b!r}")
        for a, b in self.iter_pairs():
            if not self.leq(a, b):
                continue
            for c in elems:
                if self.leq(b, c) and not self.leq(a, c):
                    raise NotALatticeError(
                        f"{self.name}: leq not transitive on {a!r} <= {b!r} <= {c!r}"
                    )
        for a, b in self.iter_pairs():
            j = self.join(a, b)
            if not self.contains(j):
                raise NotALatticeError(f"{self.name}: join({a!r}, {b!r}) escapes the carrier")
            if not (self.leq(a, j) and self.leq(b, j)):
                raise NotALatticeError(f"{self.name}: join({a!r}, {b!r}) = {j!r} is not an upper bound")
            for u in elems:
                if self.leq(a, u) and self.leq(b, u) and not self.leq(j, u):
                    raise NotALatticeError(
                        f"{self.name}: join({a!r}, {b!r}) = {j!r} is not least (vs {u!r})"
                    )
            m = self.meet(a, b)
            if not self.contains(m):
                raise NotALatticeError(f"{self.name}: meet({a!r}, {b!r}) escapes the carrier")
            if not (self.leq(m, a) and self.leq(m, b)):
                raise NotALatticeError(f"{self.name}: meet({a!r}, {b!r}) = {m!r} is not a lower bound")
            for d in elems:
                if self.leq(d, a) and self.leq(d, b) and not self.leq(d, m):
                    raise NotALatticeError(
                        f"{self.name}: meet({a!r}, {b!r}) = {m!r} is not greatest (vs {d!r})"
                    )

    # ------------------------------------------------------------------
    # Dunder conveniences.
    # ------------------------------------------------------------------

    def __contains__(self, x: Any) -> bool:
        return self.contains(x)

    def __iter__(self) -> Iterator[Element]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} with {len(self)} elements>"
