"""Componentwise products of classification schemes.

The product of complete lattices is again a complete lattice with all
operations taken componentwise.  The classic application is the
military scheme: (level chain) x (category powerset).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Tuple

from repro.errors import ElementError, LatticeError
from repro.lattice.base import Element, Lattice
from repro.lattice.chain import four_level
from repro.lattice.powerset import PowersetLattice


class ProductLattice(Lattice):
    """The product of two or more component lattices.

    Elements are tuples, one coordinate per component.  The carrier is
    materialized eagerly (products of small finite schemes), which keeps
    membership checks exact.
    """

    def __init__(self, *components: Lattice, name: str = "product"):
        if len(components) < 2:
            raise LatticeError("a product needs at least two components")
        self.name = name
        self._components: Tuple[Lattice, ...] = tuple(components)
        size = 1
        for comp in components:
            size *= len(comp.elements)
        if size > 1 << 16:
            raise LatticeError(f"product carrier would have {size} elements; too large")
        self._elements = frozenset(
            itertools.product(*(sorted(c.elements, key=repr) for c in components))
        )

    @property
    def components(self) -> Tuple[Lattice, ...]:
        return self._components

    @property
    def elements(self) -> FrozenSet[Element]:
        return self._elements

    def _check_tuple(self, x: Element) -> Tuple:
        if not isinstance(x, tuple) or len(x) != len(self._components):
            raise ElementError(f"{x!r} is not a {len(self._components)}-tuple of {self.name}")
        for comp, coord in zip(self._components, x):
            comp.check(coord)
        return x

    def leq(self, a: Element, b: Element) -> bool:
        self._check_tuple(a)
        self._check_tuple(b)
        return all(c.leq(x, y) for c, x, y in zip(self._components, a, b))

    def join(self, a: Element, b: Element) -> Element:
        self._check_tuple(a)
        self._check_tuple(b)
        return tuple(c.join(x, y) for c, x, y in zip(self._components, a, b))

    def meet(self, a: Element, b: Element) -> Element:
        self._check_tuple(a)
        self._check_tuple(b)
        return tuple(c.meet(x, y) for c, x, y in zip(self._components, a, b))

    @property
    def top(self) -> Element:
        return tuple(c.top for c in self._components)

    @property
    def bottom(self) -> Element:
        return tuple(c.bottom for c in self._components)


def military(categories: Tuple[str, ...] = ("nuclear", "crypto")) -> ProductLattice:
    """Levels x categories: the standard compartmented-security scheme."""
    return ProductLattice(
        four_level(),
        PowersetLattice(categories, name="categories"),
        name="military",
    )
