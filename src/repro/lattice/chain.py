"""Totally ordered classification schemes (chains).

The simplest and most common security schemes are chains: the two-level
``low < high`` scheme used throughout the paper's examples, and the
military ``unclassified < confidential < secret < topsecret`` hierarchy.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence

from repro.errors import LatticeError
from repro.lattice.base import Element, Lattice


class ChainLattice(Lattice):
    """A chain (total order) over distinct labels.

    ``labels`` is given from bottom to top.  Elements are the label
    values themselves, so with ``ChainLattice(["low", "high"])`` the
    classes are the strings ``"low"`` and ``"high"``.
    """

    def __init__(self, labels: Sequence[Element], name: str = "chain"):
        if not labels:
            raise LatticeError("a chain needs at least one label")
        if len(set(labels)) != len(labels):
            raise LatticeError(f"chain labels must be distinct, got {labels!r}")
        self.name = name
        self._labels = tuple(labels)
        self._rank: Dict[Element, int] = {x: i for i, x in enumerate(labels)}
        self._elements = frozenset(labels)

    @property
    def elements(self) -> FrozenSet[Element]:
        return self._elements

    @property
    def labels(self) -> tuple:
        """Labels in increasing order."""
        return self._labels

    def rank(self, a: Element) -> int:
        """Position of ``a`` in the chain, 0 = bottom."""
        self.check(a)
        return self._rank[a]

    def leq(self, a: Element, b: Element) -> bool:
        self.check(a)
        self.check(b)
        return self._rank[a] <= self._rank[b]

    def join(self, a: Element, b: Element) -> Element:
        self.check(a)
        self.check(b)
        return a if self._rank[a] >= self._rank[b] else b

    def meet(self, a: Element, b: Element) -> Element:
        self.check(a)
        self.check(b)
        return a if self._rank[a] <= self._rank[b] else b

    @property
    def top(self) -> Element:
        return self._labels[-1]

    @property
    def bottom(self) -> Element:
        return self._labels[0]


def two_level() -> ChainLattice:
    """The paper's canonical scheme: ``low < high``."""
    return ChainLattice(["low", "high"], name="two-level")


def four_level() -> ChainLattice:
    """Military levels: unclassified < confidential < secret < topsecret."""
    return ChainLattice(
        ["unclassified", "confidential", "secret", "topsecret"],
        name="four-level",
    )
