"""Powerset (category / need-to-know) classification schemes.

In Denning's lattice model, a compartmented scheme classifies
information by the *set* of categories it concerns (e.g. ``{nuclear,
crypto}``), ordered by set inclusion.  Join is union and meet is
intersection; the bottom is the empty set and the top is the full
category set.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable

from repro.errors import LatticeError
from repro.lattice.base import Element, Lattice


class PowersetLattice(Lattice):
    """All subsets of a finite category universe, ordered by inclusion.

    Elements are ``frozenset`` values.  The carrier has ``2**n``
    elements for ``n`` categories, so keep universes small (the paper
    only requires *finite* schemes).
    """

    def __init__(self, categories: Iterable[str], name: str = "powerset"):
        universe = frozenset(categories)
        if len(universe) > 16:
            raise LatticeError(
                f"powerset lattice over {len(universe)} categories would have "
                f"2**{len(universe)} elements; use a smaller universe"
            )
        self.name = name
        self._universe = universe
        subsets = []
        cats = sorted(universe)
        for r in range(len(cats) + 1):
            for combo in itertools.combinations(cats, r):
                subsets.append(frozenset(combo))
        self._elements = frozenset(subsets)

    @property
    def universe(self) -> FrozenSet[str]:
        """The full category set (the lattice top)."""
        return self._universe

    @property
    def elements(self) -> FrozenSet[Element]:
        return self._elements

    def leq(self, a: Element, b: Element) -> bool:
        self.check(a)
        self.check(b)
        return a <= b

    def join(self, a: Element, b: Element) -> Element:
        self.check(a)
        self.check(b)
        return a | b

    def meet(self, a: Element, b: Element) -> Element:
        self.check(a)
        self.check(b)
        return a & b

    @property
    def top(self) -> Element:
        return self._universe

    @property
    def bottom(self) -> Element:
        return frozenset()
