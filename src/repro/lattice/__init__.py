"""Security classification schemes as complete lattices.

The paper (Definition 1) models a security classification scheme as a
complete lattice ``(C, <=)`` with top ``high``, bottom ``low``, least upper
bound ``join`` and greatest lower bound ``meet``.  This package provides:

* :class:`~repro.lattice.base.Lattice` — the abstract interface plus
  generic helpers (``join_all``, ``meet_all``, axiom validation).
* :class:`~repro.lattice.chain.ChainLattice` — total orders such as the
  classic ``low < high`` or military ``unclassified < ... < topsecret``.
* :class:`~repro.lattice.powerset.PowersetLattice` — need-to-know category
  sets ordered by inclusion (Denning's lattice model).
* :class:`~repro.lattice.product.ProductLattice` — componentwise products,
  e.g. level x categories.
* :class:`~repro.lattice.finite.FiniteLattice` — an arbitrary finite order
  given explicitly, with full lattice-axiom validation.
* :class:`~repro.lattice.extended.ExtendedLattice` — the paper's
  Definition 4: a fresh bottom ``nil`` adjoined below an existing scheme,
  used by CFM so that ``flow(S) = nil`` means "no global flow".

Convenience constructors :func:`two_level`, :func:`four_level`,
:func:`military` build the most common schemes.
"""

from repro.lattice.base import Lattice
from repro.lattice.chain import ChainLattice, two_level, four_level
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import ProductLattice, military
from repro.lattice.finite import FiniteLattice
from repro.lattice.extended import NIL, ExtendedLattice, Nil
from repro.lattice.parse import load_scheme, parse_scheme
from repro.lattice.render import hasse_edges, to_dot, ascii_order

__all__ = [
    "Lattice",
    "ChainLattice",
    "PowersetLattice",
    "ProductLattice",
    "FiniteLattice",
    "ExtendedLattice",
    "Nil",
    "NIL",
    "two_level",
    "four_level",
    "military",
    "hasse_edges",
    "to_dot",
    "ascii_order",
    "parse_scheme",
    "load_scheme",
]
