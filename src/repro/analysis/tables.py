"""Figure 2-style certification tables and JSON report serialization.

:func:`certification_table` renders a CFM run the way the paper's
Figure 2 presents the mechanism: one row per statement with its
``mod(S)``, ``flow(S)``, and the evaluated side conditions.
:func:`report_to_dict` (and the sibling converters) turn reports into
plain JSON-serializable dictionaries for tooling.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.cfm import CertificationReport
from repro.core.denning import DenningReport
from repro.lang.ast import Stmt, iter_statements
from repro.lang.pretty import pretty
from repro.lattice.extended import NIL


def _one_line(stmt: Stmt, limit: int = 44) -> str:
    text = " ".join(pretty(stmt).split())
    return text if len(text) <= limit else text[: limit - 3] + "..."


def certification_table(report: CertificationReport) -> str:
    """One row per statement: statement, mod, flow, checks (pass/fail)."""
    from repro.lang.ast import Program

    subject = report.subject
    stmt = subject.body if isinstance(subject, Program) else subject
    by_stmt: Dict[int, List] = {}
    for check in report.checks:
        by_stmt.setdefault(check.stmt.uid, []).append(check)

    rows = []
    for node in iter_statements(stmt):
        mod = report.analysis.mod(node)
        flow = report.analysis.flow(node)
        checks = by_stmt.get(node.uid, [])
        if checks:
            verdicts = "; ".join(
                ("ok" if c.passed else "FAIL") + f" {c.condition}" for c in checks
            )
        else:
            verdicts = "(no condition)"
        rows.append((_one_line(node), repr(mod), repr(flow), verdicts))

    headers = ("statement", "mod(S)", "flow(S)", "conditions")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _class_repr(cls: Any) -> Any:
    """JSON-friendly class value (frozensets/tuples become lists/strings)."""
    if cls is NIL:
        return None
    if isinstance(cls, frozenset):
        return sorted(map(str, cls))
    if isinstance(cls, tuple):
        return [_class_repr(c) for c in cls]
    return cls


def report_to_dict(report: CertificationReport) -> Dict[str, Any]:
    """A JSON-serializable view of a CFM report."""
    return {
        "mechanism": "cfm",
        "certified": report.certified,
        "scheme": report.binding.scheme.name,
        "checks": [
            {
                "rule": c.rule,
                "condition": c.condition,
                "passed": c.passed,
                "lhs": _class_repr(c.lhs),
                "rhs": _class_repr(c.rhs),
                "line": c.stmt.loc.line or None,
                "column": c.stmt.loc.column or None,
            }
            for c in report.checks
        ],
    }


def denning_report_to_dict(report: DenningReport) -> Dict[str, Any]:
    """A JSON-serializable view of a Denning baseline report."""
    return {
        "mechanism": "denning",
        "certified": report.certified,
        "unsupported": [
            {
                "construct": type(s).__name__,
                "line": s.loc.line or None,
            }
            for s in report.unsupported
        ],
        "checks": [
            {
                "rule": c.rule,
                "condition": c.condition,
                "passed": c.passed,
                "lhs": _class_repr(c.lhs),
                "rhs": _class_repr(c.rhs),
                "line": c.stmt.loc.line or None,
            }
            for c in report.checks
        ],
    }


def fs_report_to_dict(report) -> Dict[str, Any]:
    """A JSON-serializable view of a flow-sensitive report."""
    return {
        "mechanism": "flow-sensitive",
        "certified": report.certified,
        "final_state": {
            name: _class_repr(cls)
            for name, cls in report.final_state.classes.items()
        },
        "violations": [
            {
                "variable": v.variable,
                "class": _class_repr(v.cls),
                "bound": _class_repr(v.bound),
                "line": v.stmt.loc.line or None,
            }
            for v in report.violations
        ],
    }
