"""Analysis utilities layered on the core mechanisms.

* :mod:`repro.analysis.metrics` — program shape statistics;
* :mod:`repro.analysis.flowgraph` — the variable-to-variable flow
  relation CFM enforces, derived from the constraint graph;
* :mod:`repro.analysis.leaks` — concrete leak witnesses: given a
  program and a *rejected* binding, search for an execution (schedule +
  high inputs) that demonstrates the flow CFM complained about;
* :mod:`repro.analysis.report` — combined human-readable reports.
"""

from repro.analysis.metrics import ProgramMetrics, measure
from repro.analysis.flowgraph import FlowGraph, flow_graph
from repro.analysis.leaks import LeakWitness, find_leak
from repro.analysis.atomicity import (
    AtomicityReport,
    AtomicityViolation,
    check_atomicity,
    shared_variables,
)
from repro.analysis.deadlock import DeadlockReport, DeadlockWitness, find_deadlock
from repro.analysis.report import full_report
from repro.analysis.timeline import context_switches, lane_summary, render_timeline
from repro.analysis.tables import (
    certification_table,
    denning_report_to_dict,
    fs_report_to_dict,
    report_to_dict,
)

__all__ = [
    "check_atomicity",
    "shared_variables",
    "AtomicityReport",
    "AtomicityViolation",
    "find_deadlock",
    "DeadlockReport",
    "DeadlockWitness",
    "render_timeline",
    "lane_summary",
    "context_switches",
    "certification_table",
    "report_to_dict",
    "denning_report_to_dict",
    "fs_report_to_dict",
    "ProgramMetrics",
    "measure",
    "FlowGraph",
    "flow_graph",
    "LeakWitness",
    "find_leak",
    "full_report",
]
