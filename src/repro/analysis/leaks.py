"""Concrete leak witnesses.

CFM is conservative: rejection means "the program *specifies* a flow
that the binding forbids", not that every run leaks.  This module
searches for a concrete demonstration: initial stores differing only in
a high variable whose exhaustively explored observable outcomes differ.
When it succeeds, the rejection was no false alarm; when it fails (as
it must for the section 5.2 program, whose assignment of a constant is
only formally a flow), the gap between CFM and the flow logic is on
display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.binding import StaticBinding
from repro.lang.ast import Program, Stmt, used_variables
from repro.lattice.base import Element
from repro.runtime.eval import Value
from repro.runtime.explorer import Outcome
from repro.runtime.noninterference import check_noninterference, observable_variables


@dataclass(frozen=True)
class LeakWitness:
    """Evidence that high inputs influence observer-visible outcomes."""

    observer: Element
    variable: str  # the varied high variable
    value_a: Value
    value_b: Value
    outcome: Outcome  # observable outcome possible for value_a, not value_b
    low_variables: FrozenSet[str]

    def __str__(self) -> str:
        return (
            f"observer {self.observer!r} distinguishes {self.variable}="
            f"{self.value_a} from {self.variable}={self.value_b}: "
            f"outcome {self.outcome} occurs only for the former"
        )


def find_leak(
    subject: Union[Program, Stmt],
    binding: StaticBinding,
    observer: Element,
    values: Sequence[Value] = (0, 1, 2),
    base_store: Optional[Dict[str, Value]] = None,
    max_states: int = 100_000,
    max_depth: int = 1_000,
) -> Optional[LeakWitness]:
    """Search for a leak visible to ``observer``.

    Tries, for each variable bound above the observer, each pair of
    candidate ``values``, comparing exhaustive observable-outcome sets.
    Returns the first witness found, or ``None``.
    """
    stmt = subject.body if isinstance(subject, Program) else subject
    low_vars = observable_variables(stmt, binding, observer)
    high_vars = sorted(used_variables(stmt) - low_vars)
    for name in high_vars:
        for i, a in enumerate(values):
            for bval in values[i + 1 :]:
                result = check_noninterference(
                    subject,
                    binding,
                    observer,
                    variations=[{name: a}, {name: bval}],
                    base_store=base_store,
                    max_states=max_states,
                    max_depth=max_depth,
                )
                if not result.holds:
                    i_, j_, outcome = result.witness()
                    va, vb = (a, bval) if i_ == 0 else (bval, a)
                    return LeakWitness(
                        observer, name, va, vb, outcome, result.low_variables
                    )
    return None
