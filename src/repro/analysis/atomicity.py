"""The section 2.0 atomicity condition, checked statically.

The paper assumes every assignment and expression evaluates as one
indivisible action, then notes (citing Owicki & Gries) that "this
requirement may be eliminated if every expression and assignment
statement makes at most one reference to a variable that can be
changed in another process" — the classic *at-most-one-shared-
reference* condition under which statement-level atomicity is
equivalent to memory-reference-level atomicity.

This module decides that condition:

* a variable is **shared between processes** when two parallel branches
  of some ``cobegin`` both mention it and at least one can modify it;
* each atomic action (an assignment including its target, or a guard
  evaluation) must reference at most one such variable, counting
  multiple references to the same variable separately (``x := x + x``
  makes two references).

Programs that pass can be run on real reference-interleaving hardware
without changing their possible behaviours; for programs that fail,
our machine's statement-level atomicity is a modelling choice, which
:func:`check_atomicity` makes visible instead of silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple, Union

from repro.lang.ast import (
    Assign,
    Cobegin,
    Expr,
    If,
    Node,
    Program,
    Stmt,
    Var,
    While,
    iter_nodes,
    iter_statements,
    modified_variables,
    used_variables,
)


def shared_variables(subject: Union[Program, Stmt]) -> FrozenSet[str]:
    """Variables used by two parallel branches, one of which writes.

    Computed over every ``cobegin`` in the subject (including nested
    ones): for each pair of sibling branches, a variable used by both
    and potentially modified by either is shared.
    """
    from repro.lang.ast import Signal, Wait

    stmt = subject.body if isinstance(subject, Program) else subject
    semaphores = {
        node.sem
        for node in iter_statements(stmt)
        if isinstance(node, (Wait, Signal))
    }
    shared: Set[str] = set()
    for node in iter_statements(stmt):
        if not isinstance(node, Cobegin):
            continue
        branches = node.branches
        uses = [used_variables(b) for b in branches]
        mods = [modified_variables(b) for b in branches]
        for i in range(len(branches)):
            for j in range(len(branches)):
                if i == j:
                    continue
                shared |= uses[i] & mods[j]
    # Semaphores are indivisible by definition (wait/signal are the
    # atomic primitives), so they never threaten data atomicity.
    return frozenset(shared - semaphores)


def _reference_count(expr: Expr, shared: FrozenSet[str]) -> int:
    """References (occurrences, not distinct names) to shared variables."""
    return sum(
        1
        for node in iter_nodes(expr)
        if isinstance(node, Var) and node.name in shared
    )


@dataclass(frozen=True)
class AtomicityViolation:
    """An action with more than one shared-variable reference."""

    stmt: Stmt
    references: int
    variables: Tuple[str, ...]

    def __str__(self) -> str:
        loc = f" at {self.stmt.loc}" if self.stmt.loc else ""
        return (
            f"{type(self.stmt).__name__}{loc}: {self.references} references "
            f"to shared variables {list(self.variables)} in one atomic action"
        )


@dataclass
class AtomicityReport:
    """Result of :func:`check_atomicity`."""

    shared: FrozenSet[str]
    violations: List[AtomicityViolation]

    @property
    def satisfied(self) -> bool:
        """True iff the at-most-one-shared-reference condition holds."""
        return not self.violations

    def __repr__(self) -> str:
        state = "satisfied" if self.satisfied else f"{len(self.violations)} violations"
        return f"<AtomicityReport {state}, shared={sorted(self.shared)}>"


def check_atomicity(subject: Union[Program, Stmt]) -> AtomicityReport:
    """Check the paper's single-shared-reference condition.

    Semaphores are exempt: ``wait``/``signal`` are indivisible by
    definition in every treatment, which is their entire point.
    """
    stmt = subject.body if isinstance(subject, Program) else subject
    shared = shared_variables(stmt)
    violations: List[AtomicityViolation] = []

    def offending_names(expr: Expr) -> Tuple[str, ...]:
        return tuple(
            sorted(
                {
                    node.name
                    for node in iter_nodes(expr)
                    if isinstance(node, Var) and node.name in shared
                }
            )
        )

    for node in iter_statements(stmt):
        if isinstance(node, Assign):
            count = _reference_count(node.expr, shared)
            if node.target in shared:
                count += 1
            if count > 1:
                names = set(offending_names(node.expr))
                if node.target in shared:
                    names.add(node.target)
                violations.append(
                    AtomicityViolation(node, count, tuple(sorted(names)))
                )
        elif isinstance(node, (If, While)):
            count = _reference_count(node.cond, shared)
            if count > 1:
                violations.append(
                    AtomicityViolation(node, count, offending_names(node.cond))
                )
    return AtomicityReport(shared, violations)
