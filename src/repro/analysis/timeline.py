"""Execution timelines: render a trace as per-process lanes.

Makes interleavings visible: one column per process, one row per
atomic action, in schedule order.  Used by ``repro-ifc run --timeline``
and handy when staring at a covert channel — Figure 3's forced
alternation of its three processes is immediately apparent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.runtime.machine import Event, Pid


def _pid_name(pid: Pid) -> str:
    return "/".join(map(str, pid)) or "root"


def render_timeline(trace: Sequence[Event], width: int = 24) -> str:
    """A lane diagram of ``trace`` (one lane per process)."""
    if not trace:
        return "(empty trace)"
    pids: List[Pid] = []
    for event in trace:
        if event.pid not in pids:
            pids.append(event.pid)
    pids.sort()
    lanes: Dict[Pid, int] = {pid: i for i, pid in enumerate(pids)}

    header = ["step"] + [_pid_name(pid) for pid in pids]
    col_width = max(width, max(len(h) for h in header))
    lines = ["  ".join(h.ljust(col_width) for h in header)]
    lines.append("-" * len(lines[0]))
    for i, event in enumerate(trace, start=1):
        cells = [""] * len(pids)
        detail = event.detail
        if len(detail) > col_width:
            detail = detail[: col_width - 3] + "..."
        cells[lanes[event.pid]] = detail
        lines.append(
            "  ".join([str(i).ljust(col_width)] + [c.ljust(col_width) for c in cells])
        )
    return "\n".join(lines)


def lane_summary(trace: Sequence[Event]) -> Dict[str, int]:
    """Actions executed per process (by display name)."""
    counts: Dict[str, int] = {}
    for event in trace:
        name = _pid_name(event.pid)
        counts[name] = counts.get(name, 0) + 1
    return counts


def context_switches(trace: Sequence[Event]) -> int:
    """How many times the schedule changed the running process."""
    switches = 0
    for a, b in zip(trace, trace[1:]):
        if a.pid != b.pid:
            switches += 1
    return switches
