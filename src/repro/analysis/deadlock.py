"""Deadlock analysis via exhaustive exploration.

The language's only blocking construct is ``wait``, so a deadlock is
always a starved or cyclically-dependent semaphore wait.  This module
wraps the interleaving explorer to answer the questions the paper asks
of Figure 3 ("the program of Figure 3 cannot deadlock"): is any
deadlock reachable, and if so, under which schedule and with whom
blocked?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lang.ast import Program, Stmt


from repro.runtime.eval import Value
from repro.runtime.explorer import explore
from repro.runtime.machine import Machine, Pid
from repro.runtime.scheduler import FixedScheduler


@dataclass(frozen=True)
class DeadlockWitness:
    """A reachable deadlock: the schedule into it and who is stuck."""

    schedule: Tuple[Pid, ...]
    blocked: Tuple[Pid, ...]
    store: Tuple[Tuple[str, Value], ...]

    def __str__(self) -> str:
        names = ", ".join("/".join(map(str, p)) or "root" for p in self.blocked)
        return (
            f"deadlock after {len(self.schedule)} steps; blocked: {names}; "
            f"store: {dict(self.store)}"
        )


@dataclass
class DeadlockReport:
    """Result of :func:`find_deadlock`."""

    deadlock_free: bool
    complete: bool
    witness: Optional[DeadlockWitness]
    states_visited: int

    def __repr__(self) -> str:
        verdict = "deadlock-free" if self.deadlock_free else "deadlock reachable"
        return f"<DeadlockReport {verdict}, complete={self.complete}>"


def find_deadlock(
    subject: Union[Program, Stmt],
    store: Optional[Dict[str, Value]] = None,
    max_states: int = 200_000,
    max_depth: int = 2_000,
) -> DeadlockReport:
    """Exhaustively search for a reachable deadlock.

    ``deadlock_free`` is conclusive only when ``complete`` is true
    (no exploration budget was hit).  The witness schedule is
    replayable; :func:`replay` drives a fresh machine into the
    reported state.
    """
    result = explore(subject, store=store, max_states=max_states, max_depth=max_depth)
    witness = None
    # Canonical order: the witness must not depend on set iteration
    # order, which varies with PYTHONHASHSEED across worker processes.
    for outcome in result.sorted_outcomes():
        if outcome.status != "deadlock":
            continue
        schedule = result.schedules[outcome]
        machine = replay(subject, schedule, store)
        witness = DeadlockWitness(
            tuple(schedule), tuple(machine.blocked_pids()), outcome.store
        )
        break
    return DeadlockReport(
        deadlock_free=witness is None,
        complete=result.complete,
        witness=witness,
        states_visited=result.states_visited,
    )


def replay(
    subject: Union[Program, Stmt],
    schedule: Sequence[Pid],
    store: Optional[Dict[str, Value]] = None,
) -> Machine:
    """Drive a fresh machine of ``subject`` through ``schedule``.

    The machine never mutates the AST, so the same subject can be
    re-executed any number of times.
    """
    machine = Machine(subject, store=store)
    scheduler = FixedScheduler(list(schedule), fallback="error")
    for _ in schedule:
        machine.step(scheduler.pick(machine))
    return machine
