"""The variable-to-variable flow relation a program specifies.

CFM's checks collapse to inequalities ``sbind(a) <= sbind(b)`` between
variables (see :mod:`repro.core.constraints`).  This module projects
the constraint graph down to program variables: there is a flow edge
``a -> b`` exactly when certification requires ``sbind(a) <=
sbind(b)`` — i.e. when the program can move information from ``a`` to
``b`` directly, through a local indirect flow, or through a global
(termination / synchronization) flow.

The transitive closure answers "can x reach y?" questions like the
paper's section 4.3 chain ``x -> modify -> m -> y``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple, Union

from repro.core.constraints import (
    ConstraintGraph,
    Edge,
    GraphNode,
    VarNode,
    build_constraint_graph,
)
from repro.lang.ast import Program, Stmt
from repro.lattice.base import Lattice


class FlowGraph:
    """Variable-level flows with provenance.

    ``edges`` maps ``(source, sink)`` variable pairs to the Figure 2
    rules that induced them.
    """

    def __init__(self, variables: FrozenSet[str], edges: Dict[Tuple[str, str], Set[str]]):
        self.variables = variables
        self.edges = edges
        self._succ: Dict[str, Set[str]] = {}
        for (a, bvar), _rules in edges.items():
            self._succ.setdefault(a, set()).add(bvar)

    def flows_to(self, source: str) -> FrozenSet[str]:
        """All variables reachable from ``source`` (transitively)."""
        seen: Set[str] = set()
        work = [source]
        while work:
            cur = work.pop()
            for nxt in self._succ.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        return frozenset(seen)

    def can_flow(self, source: str, sink: str) -> bool:
        """True iff certification requires ``sbind(source) <= sbind(sink)``."""
        return sink in self.flows_to(source)

    def direct_edges(self) -> List[Tuple[str, str]]:
        """The one-step flow pairs, sorted."""
        return sorted(self.edges)

    def why(self, source: str, sink: str) -> FrozenSet[str]:
        """The Figure 2 rules that induce the direct edge, if any."""
        return frozenset(self.edges.get((source, sink), ()))

    def __repr__(self) -> str:
        return f"<FlowGraph {len(self.variables)} variables, {len(self.edges)} edges>"


def flow_graph(subject: Union[Program, Stmt], scheme: Lattice) -> FlowGraph:
    """Project the CFM constraint graph onto program variables.

    Auxiliary (flow/mod/prefix) nodes are eliminated by reachability:
    an edge ``a -> b`` between variables exists when the constraint
    graph connects ``sbind(a)`` to ``sbind(b)`` through auxiliary nodes
    only.
    """
    graph: ConstraintGraph = build_constraint_graph(subject, scheme)
    succ: Dict[GraphNode, List[Edge]] = graph.succ
    edges: Dict[Tuple[str, str], Set[str]] = {}
    for start in list(graph.nodes()):
        if not isinstance(start, VarNode):
            continue
        # BFS through auxiliary nodes, collecting rule provenance.
        work: List[Tuple[GraphNode, FrozenSet[str]]] = [(start, frozenset())]
        seen: Set[GraphNode] = {start}
        while work:
            node, rules = work.pop()
            for edge in succ.get(node, ()):
                dst = edge.dst
                new_rules = rules | {edge.rule.split("-")[0]}
                if isinstance(dst, VarNode):
                    if dst.name != start.name:
                        edges.setdefault((start.name, dst.name), set()).update(new_rules)
                    continue
                if dst not in seen:
                    seen.add(dst)
                    work.append((dst, new_rules))
    return FlowGraph(graph.variables, edges)
