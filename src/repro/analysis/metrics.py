"""Program shape statistics (used by benchmarks and reports)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    If,
    Node,
    Program,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
    iter_statements,
    max_nesting,
    program_size,
    used_variables,
)


@dataclass(frozen=True)
class ProgramMetrics:
    """Counts of each statement form plus aggregate shape numbers."""

    statements: int
    assignments: int
    ifs: int
    whiles: int
    begins: int
    cobegins: int
    waits: int
    signals: int
    skips: int
    variables: int
    max_nesting: int
    max_cobegin_width: int

    @property
    def has_concurrency(self) -> bool:
        return self.cobegins > 0 or self.waits > 0 or self.signals > 0

    @property
    def has_global_flows(self) -> bool:
        """Syntactic criterion: flow(S) != nil iff a while or wait occurs."""
        return self.whiles > 0 or self.waits > 0

    def __str__(self) -> str:
        return (
            f"{self.statements} statements "
            f"(:= {self.assignments}, if {self.ifs}, while {self.whiles}, "
            f"begin {self.begins}, cobegin {self.cobegins}, "
            f"wait {self.waits}, signal {self.signals}, skip {self.skips}); "
            f"{self.variables} variables, nesting {self.max_nesting}, "
            f"widest cobegin {self.max_cobegin_width}"
        )


def measure(subject: Union[Program, Stmt]) -> ProgramMetrics:
    """Compute :class:`ProgramMetrics` for a program or statement."""
    stmt = subject.body if isinstance(subject, Program) else subject
    counts = {cls: 0 for cls in (Assign, If, While, Begin, Cobegin, Wait, Signal, Skip)}
    widest = 0
    for node in iter_statements(stmt):
        counts[type(node)] += 1
        if isinstance(node, Cobegin):
            widest = max(widest, len(node.branches))
    return ProgramMetrics(
        statements=program_size(stmt),
        assignments=counts[Assign],
        ifs=counts[If],
        whiles=counts[While],
        begins=counts[Begin],
        cobegins=counts[Cobegin],
        waits=counts[Wait],
        signals=counts[Signal],
        skips=counts[Skip],
        variables=len(used_variables(stmt)),
        max_nesting=max_nesting(stmt),
        max_cobegin_width=widest,
    )
