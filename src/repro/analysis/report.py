"""Combined human-readable reports (also backing the CLI)."""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.flowgraph import flow_graph
from repro.analysis.metrics import measure
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.lang.ast import Program, Stmt
from repro.lang.pretty import pretty


def full_report(
    subject: Union[Program, Stmt],
    binding: StaticBinding,
    include_source: bool = False,
    include_flows: bool = True,
    denning_mode: Optional[str] = "ignore",
    include_lint: bool = True,
    explore_budget=None,
) -> str:
    """One text report: metrics, CFM result, optional Denning baseline,
    the variable flow relation, and the static-lint findings.

    ``explore_budget`` (a :class:`repro.observe.Budget`) additionally
    runs the interleaving explorer under that budget and appends an
    exploration-metrics section; a partial (degraded) exploration is
    reported as such rather than raising.
    """
    lines = []
    metrics = measure(subject)
    lines.append(f"program: {metrics}")
    if include_source:
        lines.append("source:")
        for src_line in pretty(subject).splitlines():
            lines.append("    " + src_line)
    lines.append("")
    report = certify(subject, binding)
    lines.append(report.summary())
    if denning_mode is not None:
        lines.append("")
        baseline = certify_denning(subject, binding, on_concurrency=denning_mode)
        lines.append(baseline.summary())
        if baseline.certified and not report.certified:
            lines.append(
                "  note: the sequential mechanism misses the global flows "
                "CFM rejected above (the paper's motivating gap)."
            )
    if include_flows:
        lines.append("")
        graph = flow_graph(subject, binding.scheme)
        lines.append(f"flow relation ({len(graph.edges)} direct edges):")
        for a, b in graph.direct_edges():
            rules = ",".join(sorted(graph.why(a, b)))
            lines.append(f"    {a} -> {b}   [{rules}]")
    if include_lint:
        from repro.staticlint import run_lint

        result = run_lint(subject, binding=binding)
        lines.append("")
        lines.append(result.summary())
        for diagnostic in result.diagnostics:
            lines.append(
                f"    {diagnostic.span.line}:{diagnostic.span.column}: "
                f"{diagnostic.code} {diagnostic.message}"
            )
    if explore_budget is not None:
        from repro.runtime.explorer import explore

        exploration = explore(subject, budget=explore_budget, por=True)
        lines.append("")
        lines.append(f"exploration (budget {explore_budget}):")
        lines.append(
            f"    {exploration.states_visited} states, "
            f"{exploration.transitions} transitions, "
            f"{len(exploration.outcomes)} outcome(s), "
            f"complete={exploration.complete}"
        )
        if exploration.degraded:
            lines.append(
                f"    degraded: hit the {exploration.limit} budget; "
                f"{exploration.abandoned} frontier state(s) abandoned"
            )
        lines.append(
            f"    deadlock-free={exploration.deadlock_free}, "
            f"peak processes={exploration.peak_processes}, "
            f"POR-reduced branch points={exploration.reduced_states}"
        )
    return "\n".join(lines)
