"""The Denning & Denning certification mechanism (the paper's baseline).

Certification of sequential programs for secure information flow,
CACM 1977 [3]: each assignment must satisfy ``sbind(e) <= sbind(x)``
and each conditional or loop guard must satisfy ``sbind(e) <= mod(S)``.
The mechanism captures direct flows and *local* indirect flows only;
global flows — conditional non-termination and synchronization — are
outside its model, which is precisely the gap CFM closes (section 4.1:
"Global flows are disregarded by the Dennings' mechanism").

Concurrency handling is selectable:

* ``on_concurrency="reject"`` (default): the mechanism is only defined
  for sequential programs guaranteed to terminate, so any ``cobegin``,
  ``wait`` or ``signal`` makes the program uncertifiable and is
  reported as an unsupported construct.
* ``on_concurrency="ignore"``: semaphore operations are treated as
  no-ops and ``cobegin`` branches are certified independently.  This
  models naively applying the sequential mechanism to a parallel
  program, and is how the benchmarks demonstrate the flows it misses
  (e.g. the paper's Figure 3 channel is certified even with
  ``x = high, y = low``).
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple, Union

from repro.core.binding import StaticBinding
from repro.core.cfm import Check
from repro.errors import CertificationError
from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    If,
    Program,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
)
from repro.lattice.base import Element


class DenningReport:
    """Result of the sequential Denning & Denning mechanism.

    ``unsupported`` lists concurrency constructs encountered under
    ``on_concurrency="reject"``; a non-empty list makes ``certified``
    false regardless of the checks.
    """

    def __init__(
        self,
        subject,
        binding: StaticBinding,
        checks: List[Check],
        unsupported: List[Stmt],
    ):
        self.subject = subject
        self.binding = binding
        self.checks = list(checks)
        self.unsupported = list(unsupported)

    @property
    def certified(self) -> bool:
        return not self.unsupported and all(c.passed for c in self.checks)

    @property
    def violations(self) -> List[Check]:
        return [c for c in self.checks if not c.passed]

    def summary(self) -> str:
        lines = [
            f"Denning-Denning certification: "
            f"{'CERTIFIED' if self.certified else 'REJECTED'}",
            f"  checks: {len(self.checks)} total, {len(self.violations)} failed",
        ]
        for stmt in self.unsupported:
            loc = f" at {stmt.loc}" if stmt.loc else ""
            lines.append(
                f"  [FAIL] unsupported concurrency construct "
                f"{type(stmt).__name__}{loc}"
            )
        for check in self.checks:
            lines.append("  " + str(check))
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "certified" if self.certified else "rejected"
        return f"<DenningReport {state}, {len(self.checks)} checks>"


class _DenningCertifier:
    def __init__(self, binding: StaticBinding, on_concurrency: str):
        if on_concurrency not in ("reject", "ignore"):
            raise CertificationError(
                f"on_concurrency must be 'reject' or 'ignore', got {on_concurrency!r}"
            )
        self.binding = binding
        self.base = binding.scheme
        self.ignore = on_concurrency == "ignore"
        self.checks: List[Check] = []
        self.unsupported: List[Stmt] = []

    def _mod_of(self, names: FrozenSet[str]) -> Element:
        if not names:
            return self.base.top
        return self.base.meet_all_nonempty(self.binding.of_var(n) for n in names)

    def _guard_check(self, rule: str, stmt: Stmt, modified: FrozenSet[str]) -> None:
        cond_cls = self.binding.of_expr(stmt.cond)
        mod = self._mod_of(modified)
        passed = self.base.leq(cond_cls, mod)
        self.checks.append(
            Check(
                rule,
                stmt,
                "sbind(e) <= mod(S)",
                cond_cls,
                mod,
                passed,
                f"{cond_cls!r} <= {mod!r} (guard into modified {sorted(modified)})",
            )
        )

    def visit(self, stmt: Stmt) -> FrozenSet[str]:
        """Certify ``stmt``; return the set of variables it modifies."""
        if isinstance(stmt, Assign):
            expr_cls = self.binding.of_expr(stmt.expr)
            target_cls = self.binding.of_var(stmt.target)
            self.checks.append(
                Check(
                    "assignment",
                    stmt,
                    "sbind(e) <= sbind(x)",
                    expr_cls,
                    target_cls,
                    self.base.leq(expr_cls, target_cls),
                    f"{expr_cls!r} <= {target_cls!r} (expression into {stmt.target!r})",
                )
            )
            return frozenset([stmt.target])
        if isinstance(stmt, Skip):
            return frozenset()
        if isinstance(stmt, (Wait, Signal)):
            if not self.ignore:
                self.unsupported.append(stmt)
            return frozenset()  # semaphores are not data variables to [3]
        if isinstance(stmt, If):
            modified = self.visit(stmt.then_branch)
            if stmt.else_branch is not None:
                modified = modified | self.visit(stmt.else_branch)
            self._guard_check("alternation", stmt, modified)
            return modified
        if isinstance(stmt, While):
            modified = self.visit(stmt.body)
            self._guard_check("iteration", stmt, modified)
            return modified
        if isinstance(stmt, Begin):
            modified: FrozenSet[str] = frozenset()
            for child in stmt.body:
                modified = modified | self.visit(child)
            return modified
        if isinstance(stmt, Cobegin):
            if not self.ignore:
                self.unsupported.append(stmt)
            modified = frozenset()
            for branch in stmt.branches:
                modified = modified | self.visit(branch)
            return modified
        raise CertificationError(f"not a statement: {stmt!r}")


def certify_denning(
    subject: Union[Program, Stmt],
    binding: StaticBinding,
    on_concurrency: str = "reject",
) -> DenningReport:
    """Run the sequential Denning & Denning mechanism against ``binding``."""
    from repro.core.constraints import complete_synthetic_binding
    from repro.lang.procs import resolve_subject

    subject, stmt = resolve_subject(subject)
    if not isinstance(stmt, Stmt):
        raise CertificationError(f"cannot certify {subject!r}")
    binding = complete_synthetic_binding(subject, binding)
    binding.require_covers(stmt)
    certifier = _DenningCertifier(binding, on_concurrency)
    certifier.visit(stmt)
    return DenningReport(subject, binding, certifier.checks, certifier.unsupported)
