"""A flow-sensitive certifier — the practical mechanism the flow logic lacked.

The paper notes (section 1) that "no practical mechanism based on this
theoretical method [the flow logic] has been developed to date", and
shows (section 5.2) that CFM is strictly weaker than the logic: the
safe program ``begin x := 0; y := x end`` is rejected under
``x = high, y = low`` although a flow proof exists, because CFM cannot
use the fact that after ``x := 0`` the *current* class of ``x`` is low.

This module develops that practical mechanism.  It is an abstract
interpretation of the flow logic itself: the analysis state is a
concrete information state (Definition 2 — a mapping from variables to
classes) plus the two certification contexts, and each statement
transforms it exactly as the Figure 1 axioms prescribe:

* ``x := e``        : ``class(x) := class(e) (+) local (+) global``
* ``if e ...``      : both branches under ``local (+) class(e)``; join
* ``while e do S``  : Kleene iteration to the least fixpoint (finite
  lattice, monotone transformer — always terminates); ``global`` and
  the state absorb the guard each round
* ``wait(sem)``     : ``global (+)= class(sem) (+) local``; the
  semaphore absorbs the context
* ``signal(sem)``   : the semaphore absorbs the context
* ``cobegin``       : rely-guarantee rounds with *per-read*
  interference: every read of a shared variable observes, in addition
  to the branch's own flow-sensitive class, the join of classes
  sibling branches may write into it, because a sibling's write can
  land between any two of the branch's actions; the per-branch write
  logs feeding that relation are computed to a fixpoint.  (Widening
  only the branch *entry* is unsound — a write-read pair inside one
  branch can be split by a sibling's write; the property-based
  simulation test in ``tests/integration/test_fs_simulates_monitor.py``
  caught exactly that during development.)

Certification then demands that *at every program point* each
variable's computed class stays below its static binding — the policy
assertion of Definition 6, checked continuously, exactly what a
completely invariant proof promises (but here the intermediate states
may be *stronger* than the policy, which is the extra power).

Relationship to the other mechanisms (tested in the suite and measured
in ``benchmarks/bench_flow_sensitive.py``):

* strictly stronger than CFM: everything CFM certifies is certified
  (the CFM invariant state dominates ours pointwise), and the section
  5.2 family is certified too;
* still sound: for certified programs the dynamic label monitor never
  observes a class above its binding, and possibilistic
  noninterference holds across schedules;
* for sequential programs, :func:`proof_from_analysis` converts a
  successful analysis into an explicit Figure 1 flow proof accepted by
  the independent checker — mechanized proof *search* for the logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.binding import StaticBinding
from repro.errors import CertificationError
from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    If,
    Program,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
    expr_variables,
)
from repro.lattice.base import Element, Lattice


class FSState:
    """The analysis state: variable classes + the certification contexts.

    Immutable-by-convention: transformers return new states.  ``local``
    is the current indirect-flow context (the join of enclosing guards)
    and ``global`` the accumulated sequencing flow.
    """

    __slots__ = ("scheme", "classes", "local", "global_")

    def __init__(
        self,
        scheme: Lattice,
        classes: Dict[str, Element],
        local: Element,
        global_: Element,
    ):
        self.scheme = scheme
        self.classes = classes
        self.local = local
        self.global_ = global_

    @staticmethod
    def initial(scheme: Lattice, classes: Dict[str, Element]) -> "FSState":
        return FSState(scheme, dict(classes), scheme.bottom, scheme.bottom)

    # -- functional updates ------------------------------------------------

    def with_class(self, name: str, cls: Element) -> "FSState":
        updated = dict(self.classes)
        updated[name] = cls
        return FSState(self.scheme, updated, self.local, self.global_)

    def with_local(self, local: Element) -> "FSState":
        return FSState(self.scheme, self.classes, local, self.global_)

    def with_global(self, global_: Element) -> "FSState":
        return FSState(self.scheme, self.classes, self.local, global_)

    # -- queries -----------------------------------------------------------

    def cls(self, name: str) -> Element:
        try:
            return self.classes[name]
        except KeyError:
            raise CertificationError(f"variable {name!r} has no class") from None

    def expr_cls(self, expr) -> Element:
        """Definition 2 over *current* classes (constants are low)."""
        return self.scheme.join_all(
            [self.cls(v) for v in expr_variables(expr)]
        )

    def context(self) -> Element:
        return self.scheme.join(self.local, self.global_)

    # -- lattice structure on states ----------------------------------------

    def join(self, other: "FSState") -> "FSState":
        merged = {
            name: self.scheme.join(self.classes[name], other.classes[name])
            for name in self.classes
        }
        return FSState(
            self.scheme,
            merged,
            self.scheme.join(self.local, other.local),
            self.scheme.join(self.global_, other.global_),
        )

    def leq(self, other: "FSState") -> bool:
        return (
            all(
                self.scheme.leq(self.classes[n], other.classes[n])
                for n in self.classes
            )
            and self.scheme.leq(self.local, other.local)
            and self.scheme.leq(self.global_, other.global_)
        )

    def key(self) -> Tuple:
        return (
            tuple(sorted(self.classes.items(), key=lambda kv: kv[0])),
            self.local,
            self.global_,
        )

    def __repr__(self) -> str:
        items = ", ".join(f"{n}={c!r}" for n, c in sorted(self.classes.items()))
        return f"FSState({items}; local={self.local!r}, global={self.global_!r})"


@dataclass(frozen=True)
class PointViolation:
    """A policy breach at a specific program point."""

    stmt: Stmt
    variable: str
    cls: Element
    bound: Element

    def __str__(self) -> str:
        loc = f" at {self.stmt.loc}" if self.stmt.loc else ""
        return (
            f"{type(self.stmt).__name__}{loc}: class({self.variable}) = "
            f"{self.cls!r} exceeds sbind({self.variable}) = {self.bound!r}"
        )


class FSReport:
    """Result of the flow-sensitive certification."""

    def __init__(
        self,
        subject,
        binding: StaticBinding,
        final_state: FSState,
        violations: List[PointViolation],
        pre_states: Dict[int, FSState],
        post_states: Dict[int, FSState],
    ):
        self.subject = subject
        self.binding = binding
        self.final_state = final_state
        self.violations = list(violations)
        #: Analysis state immediately before each statement (by uid).
        self.pre_states = pre_states
        #: Analysis state immediately after each statement (by uid).
        self.post_states = post_states

    @property
    def certified(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            "flow-sensitive certification: "
            + ("CERTIFIED" if self.certified else "REJECTED"),
            f"  final state: {self.final_state!r}",
        ]
        for violation in self.violations:
            lines.append("  [FAIL] " + str(violation))
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "certified" if self.certified else f"{len(self.violations)} violations"
        return f"<FSReport {state}>"


class _Analyzer:
    def __init__(self, binding: StaticBinding):
        self.binding = binding
        self.scheme = binding.scheme
        self.violations: List[PointViolation] = []
        self.pre_states: Dict[int, FSState] = {}
        self.post_states: Dict[int, FSState] = {}
        #: Interference frames: while analyzing a cobegin branch, maps
        #: each shared variable to the join of classes sibling branches
        #: may write into it *at any moment*.
        self._interference: List[Dict[str, Element]] = []
        #: Write logs: one per enclosing cobegin round, recording the
        #: join of classes this branch writes into each variable.
        self._write_logs: List[Dict[str, Element]] = []

    def _policy_check(self, stmt: Stmt, name: str, cls: Element) -> None:
        bound = self.binding.of_var(name)
        if not self.scheme.leq(cls, bound):
            self.violations.append(PointViolation(stmt, name, cls, bound))

    def _record_write(self, name: str, cls: Element) -> None:
        for log in self._write_logs:
            log[name] = self.scheme.join(log.get(name, self.scheme.bottom), cls)

    def _interfered(self, name: str) -> Element:
        """Join of classes siblings may write into ``name`` concurrently."""
        cls = self.scheme.bottom
        for frame in self._interference:
            if name in frame:
                cls = self.scheme.join(cls, frame[name])
        return cls

    def _read_var(self, state: FSState, name: str) -> Element:
        """The class a read of ``name`` may observe: the branch's own
        flow-sensitive class joined with any concurrent interference
        (a sibling may write between this branch's last write and the
        read)."""
        return self.scheme.join(state.cls(name), self._interfered(name))

    def _read_expr(self, state: FSState, expr) -> Element:
        return self.scheme.join_all(
            [self._read_var(state, v) for v in expr_variables(expr)]
        )

    def analyze(self, stmt: Stmt, state: FSState) -> FSState:
        """Transform ``state`` through ``stmt``, recording policy checks."""
        self.pre_states[stmt.uid] = state
        out = self._dispatch(stmt, state)
        self.post_states[stmt.uid] = out
        return out

    def _dispatch(self, stmt: Stmt, state: FSState) -> FSState:
        scheme = self.scheme

        if isinstance(stmt, Assign):
            cls = scheme.join(self._read_expr(state, stmt.expr), state.context())
            self._policy_check(stmt, stmt.target, cls)
            self._record_write(stmt.target, cls)
            return state.with_class(stmt.target, cls)

        if isinstance(stmt, Skip):
            return state

        if isinstance(stmt, Signal):
            cls = scheme.join(self._read_var(state, stmt.sem), state.context())
            self._policy_check(stmt, stmt.sem, cls)
            self._record_write(stmt.sem, cls)
            return state.with_class(stmt.sem, cls)

        if isinstance(stmt, Wait):
            old_sem = self._read_var(state, stmt.sem)
            new_global = scheme.join(
                state.global_, scheme.join(old_sem, state.local)
            )
            new_sem = scheme.join(old_sem, state.context())
            self._policy_check(stmt, stmt.sem, new_sem)
            self._record_write(stmt.sem, new_sem)
            return state.with_class(stmt.sem, new_sem).with_global(new_global)

        if isinstance(stmt, If):
            guard = self._read_expr(state, stmt.cond)
            inner = state.with_local(scheme.join(state.local, guard))
            out1 = self.analyze(stmt.then_branch, inner)
            if stmt.else_branch is not None:
                out2 = self.analyze(stmt.else_branch, inner)
            else:
                out2 = inner
            return out1.join(out2).with_local(state.local)

        if isinstance(stmt, While):
            # Least fixpoint of the loop transformer; the guard joins
            # into both local (for the body) and global (conditional
            # termination), per the iteration rule of Figure 1.
            current = state
            while True:
                guard = self._read_expr(current, stmt.cond)
                widened = current.with_global(
                    scheme.join(
                        current.global_, scheme.join(guard, current.local)
                    )
                )
                inner = widened.with_local(scheme.join(widened.local, guard))
                body_out = self.analyze(stmt.body, inner)
                next_state = widened.join(
                    body_out.with_local(state.local)
                ).with_local(state.local)
                if next_state.leq(current) and current.leq(next_state):
                    return next_state
                current = next_state

        if isinstance(stmt, Begin):
            for child in stmt.body:
                state = self.analyze(child, state)
            return state

        if isinstance(stmt, Cobegin):
            return self._analyze_cobegin(stmt, state)

        raise CertificationError(f"not a statement: {stmt!r}")

    def _analyze_cobegin(self, stmt: Cobegin, state: FSState) -> FSState:
        """Rely-guarantee rounds with per-read interference.

        A sibling's write may land between *any* two actions of a
        branch, so it is not enough to widen the branch's entry state:
        every read of a shared variable must additionally observe the
        join of the classes siblings can write into it
        (:meth:`_read_var`).  The per-branch write logs that feed those
        interference frames are themselves computed to a fixpoint:
        round ``k+1`` analyzes each branch under the logs of round
        ``k`` until the logs stabilize (monotone over a finite lattice,
        so this terminates).  Certification contexts (``local`` /
        ``global``) are per-process and never interfere — the paper's
        own observation about the concurrency proof rule.
        """
        scheme = self.scheme
        n = len(stmt.branches)
        writes_prev: List[Dict[str, Element]] = [{} for _ in range(n)]
        while True:
            exits: List[FSState] = []
            writes_new: List[Dict[str, Element]] = []
            violations_before = len(self.violations)
            for i, branch in enumerate(stmt.branches):
                frame: Dict[str, Element] = {}
                for j, log in enumerate(writes_prev):
                    if i == j:
                        continue
                    for name, cls in log.items():
                        frame[name] = scheme.join(
                            frame.get(name, scheme.bottom), cls
                        )
                self._interference.append(frame)
                self._write_logs.append({})
                try:
                    out = self.analyze(branch, state)
                finally:
                    self._interference.pop()
                    writes_new.append(self._write_logs.pop())
                exits.append(out)
            if writes_new == writes_prev:
                merged = exits[0]
                for out in exits[1:]:
                    merged = out.join(merged)
                # Shared variables may end on a sibling's write even if
                # this branch wrote last in its own order; the exit join
                # over branches covers every last-writer choice.
                return merged.with_local(state.local)
            # Re-run under the new logs; drop this round's checks so
            # violations are reported once, against the final states.
            del self.violations[violations_before:]
            writes_prev = writes_new


def analyze(
    subject: Union[Program, Stmt],
    binding: StaticBinding,
    initial: Optional[Dict[str, Element]] = None,
) -> FSReport:
    """Run the flow-sensitive analysis and certification.

    ``initial`` gives the classes variables hold on entry (defaulting
    to their static bindings — "each variable initially contains
    information of its own class").  Certification requires every
    variable to stay below its binding at every assignment/semaphore
    point; rejection is reported, never raised.
    """
    from repro.core.constraints import complete_synthetic_binding
    from repro.lang.procs import resolve_subject

    subject, stmt = resolve_subject(subject)
    if not isinstance(stmt, Stmt):
        raise CertificationError(f"cannot analyze {subject!r}")
    binding = complete_synthetic_binding(subject, binding)
    binding.require_covers(stmt)
    from repro.lang.ast import used_variables

    names = used_variables(stmt)
    classes = {name: binding.of_var(name) for name in names}
    if initial:
        for name, cls in initial.items():
            classes[name] = binding.scheme.check(cls)
    analyzer = _Analyzer(binding)
    final = analyzer.analyze(stmt, FSState.initial(binding.scheme, classes))
    # Fixpoint iteration (while/cobegin) can visit a point repeatedly;
    # classes only grow, so keep the last (worst) violation per point.
    deduped: Dict[Tuple[int, str], PointViolation] = {}
    for violation in analyzer.violations:
        deduped[(violation.stmt.uid, violation.variable)] = violation
    return FSReport(
        subject,
        binding,
        final,
        list(deduped.values()),
        analyzer.pre_states,
        analyzer.post_states,
    )


def certify_flow_sensitive(
    subject: Union[Program, Stmt], binding: StaticBinding
) -> FSReport:
    """Certify with the flow-sensitive mechanism (see module docstring)."""
    return analyze(subject, binding)
