"""Information states and policies at the semantic level.

Definition 2: an *information state* is a total mapping from program
variables to security classes; it varies dynamically as the program
executes.  Definition 6: the *policy assertion corresponding to a
static binding* requires that no variable's current class ever exceeds
its binding.  This module gives both notions a concrete runtime
representation; the dynamic label monitor (:mod:`repro.runtime.taint`)
produces :class:`InformationState` values, and tests compare them
against :class:`PolicySpec` built from a binding.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.core.binding import StaticBinding
from repro.errors import BindingError
from repro.lattice.base import Element, Lattice


class InformationState:
    """A snapshot mapping of variables to their *current* classes.

    Mutable by design: the runtime label monitor updates it in place as
    assignments and semaphore operations execute.
    """

    def __init__(self, scheme: Lattice, classes: Mapping[str, Element]):
        self._scheme = scheme
        self._classes: Dict[str, Element] = {
            name: scheme.check(cls) for name, cls in classes.items()
        }

    @property
    def scheme(self) -> Lattice:
        return self._scheme

    @property
    def variables(self) -> frozenset:
        return frozenset(self._classes)

    def cls(self, name: str) -> Element:
        """The current class of ``name`` (the paper's underlined ``v``)."""
        try:
            return self._classes[name]
        except KeyError:
            raise BindingError(f"variable {name!r} has no class in this state") from None

    def set_cls(self, name: str, cls: Element) -> None:
        """Replace the class of ``name``."""
        self._classes[name] = self._scheme.check(cls)

    def raise_cls(self, name: str, cls: Element) -> None:
        """Join ``cls`` into the class of ``name`` (never lowers)."""
        self._classes[name] = self._scheme.join(self.cls(name), cls)

    def copy(self) -> "InformationState":
        return InformationState(self._scheme, self._classes)

    def as_dict(self) -> Dict[str, Element]:
        return dict(self._classes)

    @staticmethod
    def uniformly(scheme: Lattice, names: Iterable[str], cls: Element) -> "InformationState":
        """A state giving every name in ``names`` the class ``cls``."""
        return InformationState(scheme, {n: cls for n in names})

    def __repr__(self) -> str:
        items = ", ".join(f"{n}={c!r}" for n, c in sorted(self._classes.items()))
        return f"InformationState({items})"


class PolicySpec:
    """An information policy: per-variable upper bounds on current classes.

    The policy corresponding to a static binding (Definition 6) is the
    conjunction of ``class(v) <= sbind(v)``; :meth:`from_binding` builds
    exactly that.  ``check`` evaluates the policy against a concrete
    information state and reports each violated conjunct.
    """

    def __init__(self, scheme: Lattice, bounds: Mapping[str, Element]):
        self._scheme = scheme
        self._bounds: Dict[str, Element] = {
            name: scheme.check(cls) for name, cls in bounds.items()
        }

    @staticmethod
    def from_binding(binding: StaticBinding) -> "PolicySpec":
        """The policy assertion corresponding to ``binding`` (Definition 6)."""
        return PolicySpec(binding.scheme, binding.as_dict())

    @property
    def scheme(self) -> Lattice:
        return self._scheme

    @property
    def bounds(self) -> Dict[str, Element]:
        return dict(self._bounds)

    def check(self, state: InformationState) -> List[Tuple[str, Element, Element]]:
        """Violated conjuncts as ``(variable, current, bound)`` triples."""
        violations = []
        for name, bound in self._bounds.items():
            if name not in state.variables:
                continue
            current = state.cls(name)
            if not self._scheme.leq(current, bound):
                violations.append((name, current, bound))
        return violations

    def satisfied_by(self, state: InformationState) -> bool:
        """True iff ``state`` meets every bound."""
        return not self.check(state)

    def __repr__(self) -> str:
        items = ", ".join(f"{n}<={c!r}" for n, c in sorted(self._bounds.items()))
        return f"PolicySpec({items})"
