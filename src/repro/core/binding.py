"""Static bindings (paper Definition 3).

A static binding maps every program variable to a fixed security class;
constants are bound to ``low`` (the scheme bottom) and an expression
``e1 op e2`` to ``sbind(e1) (+) sbind(e2)``.  The Dennings' mechanism
and CFM both certify programs *against* a static binding: no certified
program can move information from a higher binding to a lower one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.errors import BindingError
from repro.lang.ast import (
    BinOp,
    BoolLit,
    Expr,
    IntLit,
    Node,
    UnOp,
    Var,
)
from repro.lang.ast import used_variables
from repro.lattice.base import Element, Lattice
from repro.lattice.extended import ExtendedLattice


class StaticBinding:
    """An immutable mapping from variable names to security classes.

    ``scheme`` is the *base* classification scheme ``(C', <=')``; the
    binding also exposes :attr:`extended`, the paper's Definition 4
    extension with ``nil``, which CFM's ``flow`` computation needs.

    ``default`` (optional) is the class assigned to variables absent
    from the mapping; when omitted, looking up an unbound variable is a
    :class:`~repro.errors.BindingError` so that incomplete bindings
    cannot silently certify programs.
    """

    def __init__(
        self,
        scheme: Lattice,
        bindings: Mapping[str, Element],
        default: Optional[Element] = None,
    ):
        self._scheme = scheme
        self._extended = ExtendedLattice(scheme)
        checked: Dict[str, Element] = {}
        for name, cls in bindings.items():
            if not isinstance(name, str) or not name:
                raise BindingError(f"variable name must be a non-empty string, got {name!r}")
            checked[name] = scheme.check(cls)
        self._bindings = checked
        self._default = scheme.check(default) if default is not None else None

    # -- accessors -------------------------------------------------------

    @property
    def scheme(self) -> Lattice:
        """The base classification scheme."""
        return self._scheme

    @property
    def extended(self) -> ExtendedLattice:
        """The scheme extended with ``nil`` (Definition 4)."""
        return self._extended

    @property
    def variables(self) -> frozenset:
        """Names explicitly bound."""
        return frozenset(self._bindings)

    def as_dict(self) -> Dict[str, Element]:
        """A copy of the explicit variable bindings."""
        return dict(self._bindings)

    def of_var(self, name: str) -> Element:
        """``sbind(v)`` for a variable; raises if unbound and no default."""
        if name in self._bindings:
            return self._bindings[name]
        if self._default is not None:
            return self._default
        raise BindingError(f"variable {name!r} has no static binding")

    def of_expr(self, expr: Expr) -> Element:
        """``sbind(e)``: constants are ``low``; operators join their operands."""
        if isinstance(expr, Var):
            return self.of_var(expr.name)
        if isinstance(expr, (IntLit, BoolLit)):
            return self._scheme.bottom
        if isinstance(expr, UnOp):
            return self.of_expr(expr.operand)
        if isinstance(expr, BinOp):
            return self._scheme.join(self.of_expr(expr.left), self.of_expr(expr.right))
        raise BindingError(f"not an expression: {expr!r}")

    def leq(self, a: Element, b: Element) -> bool:
        """Order test in the *extended* scheme (so ``nil`` participates)."""
        return self._extended.leq(a, b)

    # -- construction helpers ---------------------------------------------

    def with_bindings(self, updates: Mapping[str, Element]) -> "StaticBinding":
        """A new binding with ``updates`` applied over this one."""
        merged = dict(self._bindings)
        merged.update(updates)
        return StaticBinding(self._scheme, merged, self._default)

    def restricted_to(self, names: Iterable[str]) -> "StaticBinding":
        """A new binding keeping only ``names``."""
        keep = set(names)
        return StaticBinding(
            self._scheme,
            {n: c for n, c in self._bindings.items() if n in keep},
            self._default,
        )

    def covers(self, node: Node) -> bool:
        """True if every variable used by ``node`` is bound (or defaulted)."""
        if self._default is not None:
            return True
        return used_variables(node) <= self.variables

    def require_covers(self, node: Node) -> None:
        """Raise :class:`BindingError` naming any unbound variables."""
        if self._default is not None:
            return
        missing = sorted(used_variables(node) - self.variables)
        if missing:
            raise BindingError(
                "no static binding for variable(s): " + ", ".join(missing)
            )

    # -- dunders -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StaticBinding):
            return NotImplemented
        return (
            self._scheme is other._scheme
            and self._bindings == other._bindings
            and self._default == other._default
        )

    def __hash__(self) -> int:
        return hash((id(self._scheme), frozenset(self._bindings.items()), self._default))

    def __repr__(self) -> str:
        items = ", ".join(f"{n}={c!r}" for n, c in sorted(self._bindings.items()))
        return f"StaticBinding({self._scheme.name}: {items})"
