"""The Concurrent Flow Mechanism (paper Figure 2, Definitions 4-5).

CFM certifies a program against a static binding by computing three
syntax-directed functions over the *extended* classification scheme
(the base scheme with ``nil`` adjoined below everything):

* ``mod(S)`` — the greatest lower bound of the bindings of the
  variables potentially modified by ``S`` (the lattice top when ``S``
  modifies nothing, so the empty meet imposes no constraint);
* ``flow(S)`` — the least upper bound of the global flows produced by
  ``S``; ``nil`` when ``S`` produces none.  A statement produces a
  global flow iff it contains a ``while`` (conditional termination) or
  a ``wait`` (conditional delay) — a purely syntactic property;
* ``cert(S)`` — true iff no flow specified by ``S`` violates the
  binding.

The table below is Figure 2 verbatim; each row's side conditions become
:class:`Check` records in the returned report:

====================  =========================================================
``x := e``            ``sbind(e) <= sbind(x)``
``if e ...``          ``cert(S1) and cert(S2) and sbind(e) <= mod(S)``
``while e do S1``     ``cert(S1) and flow(S) <= mod(S)``
``begin S1;..Sn end`` ``cert(Si)`` and ``flow(Sj) <= mod(Si)`` for ``j < i``
``cobegin ... coend`` ``cert(S1) and ... and cert(Sn)``
``wait(sem)``         always certified (but ``flow = sbind(sem)``)
``signal(sem)``       always certified
====================  =========================================================

Everything is computed in a single post-order pass: O(program length)
lattice operations, which is the paper's section 6 complexity claim
(benchmarked in ``benchmarks/bench_linearity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.core.binding import StaticBinding
from repro.errors import CertificationError
from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    If,
    Node,
    Program,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
)
from repro.lattice.base import Element
from repro.lattice.extended import NIL


@dataclass(frozen=True)
class Check:
    """One evaluated side condition from Figure 2.

    ``lhs`` and ``rhs`` are the concrete classes compared; ``passed``
    is ``extended.leq(lhs, rhs)``.  ``condition`` is the symbolic form
    from the paper (e.g. ``"sbind(e) <= mod(S)"``); ``detail`` explains
    the concrete comparison.
    """

    rule: str
    stmt: Stmt
    condition: str
    lhs: Element
    rhs: Element
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "ok " if self.passed else "FAIL"
        loc = f" at {self.stmt.loc}" if self.stmt.loc else ""
        return f"[{mark}] {self.rule}{loc}: {self.condition} -- {self.detail}"


@dataclass
class CFMAnalysis:
    """Per-statement ``mod``/``flow`` facts keyed by node uid."""

    mod_class: Dict[int, Element] = field(default_factory=dict)
    flow_class: Dict[int, Element] = field(default_factory=dict)
    modified: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def mod(self, stmt: Stmt) -> Element:
        """``mod(S)`` — glb of bindings of variables modified by ``stmt``."""
        return self.mod_class[stmt.uid]

    def flow(self, stmt: Stmt) -> Element:
        """``flow(S)`` — lub of global flows; ``NIL`` when there are none."""
        return self.flow_class[stmt.uid]

    def modified_vars(self, stmt: Stmt) -> FrozenSet[str]:
        """Names of variables potentially modified by ``stmt``."""
        return self.modified[stmt.uid]


class CertificationReport:
    """The complete result of running CFM over one program.

    ``certified`` is the paper's ``cert(S)``; ``checks`` records every
    side condition with its concrete classes, and ``violations`` the
    failed ones.  ``analysis`` exposes ``mod``/``flow`` for each
    statement so callers (and the Theorem 1 proof generator) can reuse
    the pass.
    """

    def __init__(
        self,
        subject: Node,
        binding: StaticBinding,
        analysis: CFMAnalysis,
        checks: List[Check],
    ):
        self.subject = subject
        self.binding = binding
        self.analysis = analysis
        self.checks = list(checks)

    @property
    def certified(self) -> bool:
        """True iff every Figure 2 condition holds (``cert(S)``)."""
        return all(c.passed for c in self.checks)

    @property
    def violations(self) -> List[Check]:
        """The failed checks."""
        return [c for c in self.checks if not c.passed]

    def summary(self) -> str:
        """A human-readable account of the certification run."""
        lines = [
            f"CFM certification: {'CERTIFIED' if self.certified else 'REJECTED'}",
            f"  scheme: {self.binding.scheme.name}",
            f"  checks: {len(self.checks)} total, {len(self.violations)} failed",
        ]
        for check in self.checks:
            lines.append("  " + str(check))
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "certified" if self.certified else f"{len(self.violations)} violations"
        return f"<CertificationReport {state}, {len(self.checks)} checks>"


class _Certifier:
    """Single post-order Figure 2 evaluation."""

    def __init__(self, binding: StaticBinding):
        self.binding = binding
        self.base = binding.scheme
        self.ext = binding.extended
        self.analysis = CFMAnalysis()
        self.checks: List[Check] = []

    # -- helpers ---------------------------------------------------------

    def _record(self, stmt: Stmt, mod: Element, flow: Element, modified: FrozenSet[str]):
        self.analysis.mod_class[stmt.uid] = mod
        self.analysis.flow_class[stmt.uid] = flow
        self.analysis.modified[stmt.uid] = modified
        return mod, flow, modified

    def _check(
        self,
        rule: str,
        stmt: Stmt,
        condition: str,
        lhs: Element,
        rhs: Element,
        detail_note: str = "",
    ) -> None:
        passed = self.ext.leq(lhs, rhs)
        detail = f"{lhs!r} <= {rhs!r}"
        if detail_note:
            detail += f" ({detail_note})"
        self.checks.append(Check(rule, stmt, condition, lhs, rhs, passed, detail))

    def _join_flows(self, flows) -> Element:
        result: Element = NIL
        for f in flows:
            result = self.ext.join(result, f)
        return result

    # -- the Figure 2 table ------------------------------------------------

    def visit(self, stmt: Stmt) -> Tuple[Element, Element, FrozenSet[str]]:
        """Return ``(mod(S), flow(S), modified-variables(S))``."""
        if isinstance(stmt, Assign):
            mod = self.binding.of_var(stmt.target)
            self._check(
                "assignment",
                stmt,
                "sbind(e) <= sbind(x)",
                self.binding.of_expr(stmt.expr),
                mod,
                detail_note=f"expression into {stmt.target!r}",
            )
            return self._record(stmt, mod, NIL, frozenset([stmt.target]))

        if isinstance(stmt, Skip):
            return self._record(stmt, self.base.top, NIL, frozenset())

        if isinstance(stmt, Wait):
            sem = self.binding.of_var(stmt.sem)
            # cert(wait) = true; the conditional delay is a global flow.
            return self._record(stmt, sem, sem, frozenset([stmt.sem]))

        if isinstance(stmt, Signal):
            sem = self.binding.of_var(stmt.sem)
            return self._record(stmt, sem, NIL, frozenset([stmt.sem]))

        if isinstance(stmt, If):
            mod1, flow1, vars1 = self.visit(stmt.then_branch)
            if stmt.else_branch is not None:
                mod2, flow2, vars2 = self.visit(stmt.else_branch)
            else:
                mod2, flow2, vars2 = self.base.top, NIL, frozenset()
            modified = vars1 | vars2
            mod = self.base.meet(mod1, mod2)
            cond_cls = self.binding.of_expr(stmt.cond)
            if flow1 is NIL and flow2 is NIL:
                flow: Element = NIL
            else:
                flow = self.ext.join(self.ext.join(flow1, flow2), cond_cls)
            self._check(
                "alternation",
                stmt,
                "sbind(e) <= mod(S)",
                cond_cls,
                mod,
                detail_note=f"condition into modified {sorted(modified)}",
            )
            return self._record(stmt, mod, flow, modified)

        if isinstance(stmt, While):
            mod1, flow1, vars1 = self.visit(stmt.body)
            cond_cls = self.binding.of_expr(stmt.cond)
            flow = self.ext.join(flow1, cond_cls)
            self._check(
                "iteration",
                stmt,
                "flow(S) <= mod(S)",
                flow,
                mod1,
                detail_note=f"loop global flow into modified {sorted(vars1)}",
            )
            return self._record(stmt, mod1, flow, vars1)

        if isinstance(stmt, Begin):
            prefix_flow: Element = NIL
            mods: List[Element] = []
            flows: List[Element] = []
            var_sets: List[FrozenSet[str]] = []
            for i, child in enumerate(stmt.body):
                mod_i, flow_i, vars_i = self.visit(child)
                if prefix_flow is not NIL:
                    # flow(Sj) <= mod(Si) for all j < i, folded into one
                    # prefix join (equivalent since join is the lub).
                    passed = self.ext.leq(prefix_flow, mod_i)
                    note = (
                        "sequencing global flow into this statement"
                        if passed
                        else self._blame_prefix(stmt.body[:i], flows, mod_i)
                    )
                    self._check(
                        "composition",
                        child,
                        "flow(Sj) <= mod(Si), j < i",
                        prefix_flow,
                        mod_i,
                        detail_note=note,
                    )
                mods.append(mod_i)
                flows.append(flow_i)
                var_sets.append(vars_i)
                prefix_flow = self.ext.join(prefix_flow, flow_i)
            modified = frozenset().union(*var_sets) if var_sets else frozenset()
            mod = self.base.top if not mods else self.base.meet_all_nonempty(mods)
            return self._record(stmt, mod, self._join_flows(flows), modified)

        if isinstance(stmt, Cobegin):
            mods = []
            flows = []
            var_sets = []
            for branch in stmt.branches:
                mod_i, flow_i, vars_i = self.visit(branch)
                mods.append(mod_i)
                flows.append(flow_i)
                var_sets.append(vars_i)
            modified = frozenset().union(*var_sets) if var_sets else frozenset()
            mod = self.base.top if not mods else self.base.meet_all_nonempty(mods)
            # No extra check: components execute independently (section 4.2).
            return self._record(stmt, mod, self._join_flows(flows), modified)

        raise CertificationError(f"not a statement: {stmt!r}")

    def _blame_prefix(self, earlier: List[Stmt], flows: List[Element], mod_i: Element) -> str:
        """Name the earliest earlier statement whose flow breaks the bound.

        Only consulted to build the message; certification itself uses
        the folded prefix join.
        """
        for stmt_j, flow_j in zip(earlier, flows):
            if flow_j is not NIL and not self.ext.leq(flow_j, mod_i):
                loc = f" at {stmt_j.loc}" if stmt_j.loc else ""
                return f"global flow {flow_j!r} from statement{loc}"
        return "prefix global flow"


def certify(subject: Union[Program, Stmt], binding: StaticBinding) -> CertificationReport:
    """Run CFM over a program or bare statement against ``binding``.

    Every variable used by the subject must be covered by the binding
    (or the binding must have a default class); otherwise a
    :class:`~repro.errors.BindingError` is raised before any analysis.
    Rejection is *not* an exception — inspect ``report.certified``.
    """
    from repro.core.constraints import complete_synthetic_binding
    from repro.lang.procs import resolve_subject

    subject, stmt = resolve_subject(subject)
    if not isinstance(stmt, Stmt):
        raise CertificationError(f"cannot certify {subject!r}")
    binding = complete_synthetic_binding(subject, binding)
    binding.require_covers(stmt)
    certifier = _Certifier(binding)
    certifier.visit(stmt)
    return CertificationReport(subject, binding, certifier.analysis, certifier.checks)
