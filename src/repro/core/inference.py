"""Least-binding inference.

Given a program and a *partial* static binding (e.g. "``x`` is high and
``y`` is low; classify everything else for me"), compute the least
restrictive completion under which CFM certifies the program — or a
witness that no completion exists.

The CFM conditions are monotone lattice inequalities (see
:mod:`repro.core.constraints`), so the least completion is the least
fixed point of the constraint graph with the given variables pinned,
computed by worklist propagation.  If propagation would need to raise a
pinned variable, the fixed bindings are unsatisfiable and the violated
edges are returned as the explanation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.constraints import Edge, VarNode, build_constraint_graph
from repro.errors import InferenceError
from repro.lang.ast import Program, Stmt, used_variables
from repro.lattice.base import Element, Lattice


class InferenceResult:
    """Outcome of :func:`infer_binding`.

    ``satisfiable`` tells whether a completion exists; when it does,
    ``binding`` is the least one and ``inferred`` maps each originally
    free variable to its inferred class.  When it does not,
    ``violations`` holds the constraint edges that force some pinned
    variable above its fixed class.
    """

    def __init__(
        self,
        satisfiable: bool,
        binding: Optional[StaticBinding],
        inferred: Dict[str, Element],
        violations: List[Edge],
    ):
        self.satisfiable = satisfiable
        self.binding = binding
        self.inferred = dict(inferred)
        self.violations = list(violations)

    def explain(self) -> str:
        """A short human-readable account."""
        if self.satisfiable:
            items = ", ".join(f"{n}={c!r}" for n, c in sorted(self.inferred.items()))
            return f"satisfiable; inferred: {items or '(nothing to infer)'}"
        lines = ["unsatisfiable:"]
        for e in self.violations:
            lines.append(f"  required {e} but the target is pinned lower")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<InferenceResult {'sat' if self.satisfiable else 'unsat'}>"


def infer_binding(
    subject: Union[Program, Stmt],
    scheme: Lattice,
    fixed: Mapping[str, Element],
) -> InferenceResult:
    """Infer the least completion of ``fixed`` certifying ``subject``.

    Free variables receive the *least* classes consistent with every
    CFM check; a free variable that no information reaches gets the
    scheme bottom (``low``).  The returned binding, when satisfiable,
    always certifies: ``certify(subject, result.binding).certified``
    holds (asserted here as a cheap internal sanity check).
    """
    from repro.lang.procs import resolve_subject

    subject, stmt = resolve_subject(subject)
    program_vars = used_variables(stmt)
    unknown_fixed = set(fixed) - set(program_vars)
    # Pinning variables the program never mentions is legal (they simply
    # pass through to the output binding) but worth keeping, not erroring.
    graph = build_constraint_graph(stmt, scheme)
    valuation, violated = graph.least_solution(scheme, fixed)
    if violated:
        return InferenceResult(False, None, {}, violated)
    classes: Dict[str, Element] = dict(fixed)
    inferred: Dict[str, Element] = {}
    for name in program_vars:
        if name in fixed:
            continue
        cls = valuation.get(VarNode(name), scheme.bottom)
        classes[name] = cls
        inferred[name] = cls
    binding = StaticBinding(scheme, classes)
    report = certify(stmt, binding)
    if not report.certified:  # pragma: no cover - internal consistency
        raise InferenceError(
            "internal error: least solution does not certify; violations: "
            + "; ".join(str(v) for v in report.violations)
        )
    _ = unknown_fixed  # documented behaviour: harmless extras
    return InferenceResult(True, binding, inferred, [])
