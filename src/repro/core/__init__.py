"""The paper's certification mechanisms.

* :mod:`repro.core.binding` — static bindings (Definition 3).
* :mod:`repro.core.policy` — information states and policy assertions
  at the semantic level (Definitions 2 and 6).
* :mod:`repro.core.cfm` — the Concurrent Flow Mechanism (Figure 2),
  the paper's primary contribution.
* :mod:`repro.core.denning` — the Denning & Denning baseline [3].
* :mod:`repro.core.constraints` — every CFM check as an edge in a
  lattice constraint graph.
* :mod:`repro.core.inference` — least-binding inference over that graph.
"""

from repro.core.binding import StaticBinding
from repro.core.cfm import CertificationReport, CFMAnalysis, Check, certify
from repro.core.constraints import ConstraintGraph, build_constraint_graph
from repro.core.denning import DenningReport, certify_denning
from repro.core.flowsensitive import (
    FSReport,
    FSState,
    analyze,
    certify_flow_sensitive,
)
from repro.core.inference import InferenceResult, infer_binding
from repro.core.policy import InformationState, PolicySpec

__all__ = [
    "StaticBinding",
    "certify",
    "CertificationReport",
    "CFMAnalysis",
    "Check",
    "certify_denning",
    "DenningReport",
    "certify_flow_sensitive",
    "analyze",
    "FSReport",
    "FSState",
    "ConstraintGraph",
    "build_constraint_graph",
    "infer_binding",
    "InferenceResult",
    "InformationState",
    "PolicySpec",
]
