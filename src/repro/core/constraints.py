"""CFM certification conditions as a lattice constraint graph.

Every Figure 2 side condition has the shape ``join(sources) <= meet
(sinks)``, which decomposes into per-pair inequalities ``source <=
sink``.  We materialize these as edges of a directed graph whose nodes
are program variables, lattice constants, and two families of
*auxiliary* nodes that keep the edge count linear in program size:

* ``flow@uid`` — the global flow produced by the statement with that
  uid (``flow(S)`` in the paper);
* ``mod@uid`` — a hub standing for ``mod(S)``: anything required to be
  below ``mod(S)`` gets one edge into the hub, and the hub has one edge
  to each modified variable;
* ``pre@uid/i`` — the running prefix join ``flow(S1) (+) ... (+)
  flow(Si)`` inside the composition with that uid.

An edge ``a -> b`` asserts ``class(a) <= class(b)`` must hold of any
satisfying binding.  The *least solution* (computed by worklist
propagation from the lattice bottom, with some variables pinned) is the
least restrictive completion of a partial binding — the engine behind
:func:`repro.core.inference.infer_binding`.

Whether ``flow(S) = nil`` is a purely syntactic property (``S``
contains a ``while`` or ``wait`` or not), so nil-ness never depends on
the binding and the graph construction can resolve it statically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.errors import CertificationError
from repro.lang.ast import (
    Assign,
    Begin,
    Cobegin,
    Expr,
    If,
    Program,
    Signal,
    Skip,
    Stmt,
    Wait,
    While,
    expr_variables,
    iter_nodes,
)
from repro.lattice.base import Element, Lattice


# ----------------------------------------------------------------------
# Graph nodes.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VarNode:
    """A program variable's static binding."""

    name: str

    def __str__(self) -> str:
        return f"sbind({self.name})"


@dataclass(frozen=True)
class ConstNode:
    """A lattice constant (source only)."""

    value: Element

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class FlowNode:
    """``flow(S)`` of the statement with uid ``uid``."""

    uid: int

    def __str__(self) -> str:
        return f"flow@{self.uid}"


@dataclass(frozen=True)
class ModNode:
    """A hub standing for ``mod(S)`` of the statement with uid ``uid``."""

    uid: int

    def __str__(self) -> str:
        return f"mod@{self.uid}"


@dataclass(frozen=True)
class PrefixNode:
    """Prefix flow join inside composition ``uid`` after child ``index``."""

    uid: int
    index: int

    def __str__(self) -> str:
        return f"pre@{self.uid}/{self.index}"


GraphNode = Union[VarNode, ConstNode, FlowNode, ModNode, PrefixNode]


@dataclass(frozen=True)
class Edge:
    """``src <= dst``, with the Figure 2 rule that demanded it."""

    src: GraphNode
    dst: GraphNode
    rule: str
    stmt_uid: int

    def __str__(self) -> str:
        return f"{self.src} <= {self.dst}  [{self.rule}]"


class ConstraintGraph:
    """The constraint graph of one program.

    ``edges`` is the full edge list; ``succ`` indexes edges by source
    node for propagation.
    """

    def __init__(self, edges: List[Edge], variables: FrozenSet[str]):
        self.edges = list(edges)
        self.variables = variables
        self.succ: Dict[GraphNode, List[Edge]] = {}
        for e in self.edges:
            self.succ.setdefault(e.src, []).append(e)

    def nodes(self) -> Set[GraphNode]:
        """Every node mentioned by an edge, plus isolated variables."""
        out: Set[GraphNode] = {VarNode(v) for v in self.variables}
        for e in self.edges:
            out.add(e.src)
            out.add(e.dst)
        return out

    # ------------------------------------------------------------------

    def least_solution(
        self,
        scheme: Lattice,
        fixed: Mapping[str, Element],
    ) -> Tuple[Dict[GraphNode, Element], List[Edge]]:
        """Least valuation satisfying all edges, given pinned variables.

        Free variables and auxiliary nodes start at the scheme bottom
        and are raised by worklist propagation; pinned variables never
        rise.  Returns ``(valuation, violated_edges)`` where a violated
        edge is one whose source value exceeds a *pinned* target — the
        witness that ``fixed`` cannot be completed.
        """
        for name, cls in fixed.items():
            scheme.check(cls)
        value: Dict[GraphNode, Element] = {}
        for node in self.nodes():
            if isinstance(node, ConstNode):
                value[node] = node.value
            elif isinstance(node, VarNode) and node.name in fixed:
                value[node] = fixed[node.name]
            else:
                value[node] = scheme.bottom
        pinned = {VarNode(n) for n in fixed}

        work: List[GraphNode] = list(value)
        on_work = set(work)
        while work:
            node = work.pop()
            on_work.discard(node)
            v = value[node]
            for edge in self.succ.get(node, ()):
                dst = edge.dst
                if dst in pinned or isinstance(dst, ConstNode):
                    continue  # pinned targets are checked afterwards
                joined = scheme.join(value[dst], v)
                if joined != value[dst]:
                    value[dst] = joined
                    if dst not in on_work:
                        work.append(dst)
                        on_work.add(dst)

        violated = [
            e
            for e in self.edges
            if (e.dst in pinned or isinstance(e.dst, ConstNode))
            and not scheme.leq(value[e.src], value[e.dst])
        ]
        return value, violated


# ----------------------------------------------------------------------
# Construction.
# ----------------------------------------------------------------------


class _Builder:
    def __init__(self, scheme: Lattice):
        self.scheme = scheme
        self.edges: List[Edge] = []

    def edge(self, src: GraphNode, dst: GraphNode, rule: str, uid: int) -> None:
        self.edges.append(Edge(src, dst, rule, uid))

    def expr_sources(self, expr: Expr) -> List[GraphNode]:
        return [VarNode(name) for name in sorted(expr_variables(expr))]

    def visit(self, stmt: Stmt) -> Tuple[Optional[FlowNode], FrozenSet[str]]:
        """Emit edges for ``stmt``.

        Returns ``(flow_node, modified_vars)`` where ``flow_node`` is
        ``None`` exactly when ``flow(S) = nil``.  The statement's mod
        hub is created lazily: an edge into ``mod@uid`` plus edges from
        the hub to each modified variable.
        """
        if isinstance(stmt, Assign):
            for src in self.expr_sources(stmt.expr):
                self.edge(src, VarNode(stmt.target), "assignment", stmt.uid)
            return None, frozenset([stmt.target])

        if isinstance(stmt, Skip):
            return None, frozenset()

        if isinstance(stmt, Wait):
            flow = FlowNode(stmt.uid)
            self.edge(VarNode(stmt.sem), flow, "wait-flow", stmt.uid)
            return flow, frozenset([stmt.sem])

        if isinstance(stmt, Signal):
            # flow(signal) = nil; mod(signal) = sbind(sem); cert = true.
            return None, frozenset([stmt.sem])

        if isinstance(stmt, If):
            flow1, vars1 = self.visit(stmt.then_branch)
            if stmt.else_branch is not None:
                flow2, vars2 = self.visit(stmt.else_branch)
            else:
                flow2, vars2 = None, frozenset()
            modified = vars1 | vars2
            hub = self._mod_hub(stmt, modified, "alternation")
            for src in self.expr_sources(stmt.cond):
                self.edge(src, hub, "alternation", stmt.uid)
            if flow1 is None and flow2 is None:
                return None, modified
            flow = FlowNode(stmt.uid)
            for sub in (flow1, flow2):
                if sub is not None:
                    self.edge(sub, flow, "alternation-flow", stmt.uid)
            for src in self.expr_sources(stmt.cond):
                self.edge(src, flow, "alternation-flow", stmt.uid)
            return flow, modified

        if isinstance(stmt, While):
            flow1, vars1 = self.visit(stmt.body)
            flow = FlowNode(stmt.uid)
            if flow1 is not None:
                self.edge(flow1, flow, "iteration-flow", stmt.uid)
            for src in self.expr_sources(stmt.cond):
                self.edge(src, flow, "iteration-flow", stmt.uid)
            hub = self._mod_hub(stmt, vars1, "iteration")
            self.edge(flow, hub, "iteration", stmt.uid)
            return flow, vars1

        if isinstance(stmt, Begin):
            prefix: Optional[PrefixNode] = None
            child_flows: List[Optional[FlowNode]] = []
            modified: FrozenSet[str] = frozenset()
            for i, child in enumerate(stmt.body):
                flow_i, vars_i = self.visit(child)
                if prefix is not None:
                    hub = self._mod_hub(child, vars_i, "composition")
                    self.edge(prefix, hub, "composition", stmt.uid)
                if flow_i is not None:
                    new_prefix = PrefixNode(stmt.uid, i)
                    if prefix is not None:
                        self.edge(prefix, new_prefix, "composition-prefix", stmt.uid)
                    self.edge(flow_i, new_prefix, "composition-prefix", stmt.uid)
                    prefix = new_prefix
                child_flows.append(flow_i)
                modified = modified | vars_i
            if all(f is None for f in child_flows):
                return None, modified
            flow = FlowNode(stmt.uid)
            for f in child_flows:
                if f is not None:
                    self.edge(f, flow, "composition-flow", stmt.uid)
            return flow, modified

        if isinstance(stmt, Cobegin):
            child_flows = []
            modified = frozenset()
            for branch in stmt.branches:
                flow_i, vars_i = self.visit(branch)
                child_flows.append(flow_i)
                modified = modified | vars_i
            if all(f is None for f in child_flows):
                return None, modified
            flow = FlowNode(stmt.uid)
            for f in child_flows:
                if f is not None:
                    self.edge(f, flow, "concurrency-flow", stmt.uid)
            return flow, modified

        raise CertificationError(f"not a statement: {stmt!r}")

    def _mod_hub(self, stmt: Stmt, modified: FrozenSet[str], rule: str) -> ModNode:
        hub = ModNode(stmt.uid)
        for name in sorted(modified):
            self.edge(hub, VarNode(name), f"{rule}-mod", stmt.uid)
        return hub


def complete_synthetic_binding(subject, binding):
    """Classify procedure-expansion temporaries automatically.

    Activation variables (``Program.synthetic``) are not policy
    objects: their classes are whatever the call context dictates.  We
    assign each its *least* class consistent with the constraint graph
    under the user's bindings — so certification of the expansion
    agrees with call-site instantiation of the procedure body.  The
    user's own bindings are never touched.
    """
    from repro.core.binding import StaticBinding
    from repro.lang.ast import Program

    if not isinstance(subject, Program) or not subject.synthetic:
        return binding
    missing = [name for name in subject.synthetic if name not in binding.variables]
    if not missing:
        return binding
    scheme = binding.scheme
    graph = build_constraint_graph(subject.body, scheme)
    fixed = {
        name: binding.of_var(name)
        for name in graph.variables
        if name in binding.variables
    }
    valuation, _violated = graph.least_solution(scheme, fixed)
    return binding.with_bindings(
        {
            name: valuation.get(VarNode(name), scheme.bottom)
            for name in missing
        }
    )


def build_constraint_graph(
    subject: Union[Program, Stmt], scheme: Lattice
) -> ConstraintGraph:
    """Build the CFM constraint graph of ``subject`` over ``scheme``."""
    from repro.lang.procs import resolve_subject

    subject, stmt = resolve_subject(subject)
    if not isinstance(stmt, Stmt):
        raise CertificationError(f"cannot analyze {subject!r}")
    builder = _Builder(scheme)
    builder.visit(stmt)
    variables = set()
    from repro.lang.ast import used_variables

    variables = used_variables(stmt)
    return ConstraintGraph(builder.edges, frozenset(variables))
