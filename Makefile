# Canonical project commands.

PYTHON ?= python

.PHONY: install test bench bench-tables bench-pipeline bench-fuzz bench-cert bench-serve fuzz examples lint-smoke all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The paper-style decision tables (EXPERIMENTS.md material).
bench-tables:
	$(PYTHON) -m pytest benchmarks/ -s --benchmark-disable

# Full pipeline/POR benchmark with perf gates -> BENCH_pipeline.json.
bench-pipeline:
	$(PYTHON) benchmarks/bench_pipeline.py

# Fuzz throughput benchmark with quality gates -> BENCH_fuzz.json.
bench-fuzz:
	$(PYTHON) benchmarks/bench_fuzz.py

# Fused-certifier identity + throughput gates -> BENCH_cert.json.
bench-cert:
	$(PYTHON) benchmarks/bench_cert.py

# Serve front-line loadtest with admission gates -> BENCH_serve.json.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py

# A real differential fuzzing campaign (docs/fuzzing.md).
fuzz:
	$(PYTHON) -m repro fuzz --seeds 200 --jobs 4

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; \
		$(PYTHON) $$f > /dev/null || exit 1; \
	done
	@echo "all examples ran cleanly"

# Byte-compile everything as a cheap syntax/import smoke test.
lint-smoke:
	$(PYTHON) -m compileall -q src tests benchmarks examples

all: install test bench examples
