"""E6 — Section 5.2: the flow logic is strictly stronger than CFM.

The paper's example: ``begin x := 0; y := x end`` with x=high, y=low is
rejected by CFM although no execution leaks (the copied value is the
constant 0), and a flow proof of the policy exists.  We reproduce the
exact example, then measure the gap on a generated family of
"sanitize-then-copy" programs: CFM rejects all of them, a programmatic
flow proof (mirroring the paper's) validates for all of them, and
exhaustive exploration confirms none actually leaks.
"""

from benchmarks._util import emit_table
from repro.analysis.leaks import find_leak
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.lang import builder as b
from repro.lang.parser import parse_statement
from repro.lattice.chain import two_level
from repro.lattice.extended import ExtendedLattice
from repro.logic.assertions import Bound, FlowAssertion, vlg_assertion
from repro.logic.checker import action_substitution, check_proof
from repro.logic.classexpr import const_expr, var_class
from repro.logic.proof import ProofNode

SCHEME = two_level()
EXT = ExtendedLattice(SCHEME)


def sanitize_then_copy(n_copies):
    """begin h := 0; l1 := h; l2 := l1; ... end — safe but CFM-rejected."""
    stmts = [b.assign("h", 0), b.assign("l0", "h")]
    for i in range(1, n_copies):
        stmts.append(b.assign(f"l{i}", f"l{i-1}"))
    return b.begin(*stmts)


def flow_proof_for(stmt, binding):
    """The paper's section 5.2 proof shape, generalized: after h := 0
    the class of h is low, so every copy stays low."""
    low = const_expr("low")
    names = sorted(binding.variables)

    def state(h_bound):
        v = FlowAssertion(
            Bound(var_class(n), low if n != "h" else const_expr(h_bound))
            for n in names
        )
        return vlg_assertion(v, low, low)

    pre = state("high")
    after = state("low")
    premises = []
    current_pre = pre
    for child in stmt.body:
        axiom_pre = after.substitute(action_substitution(child, SCHEME), EXT)
        axiom = ProofNode("assignment", child, axiom_pre, after)
        premises.append(ProofNode("consequence", child, current_pre, after, [axiom]))
        current_pre = after
    return ProofNode("composition", stmt, pre, after, premises)


def test_paper_example_exactly():
    stmt = parse_statement("begin x := 0; y := x end")
    binding = StaticBinding(SCHEME, {"x": "high", "y": "low"})
    report = certify(stmt, binding)
    assert not report.certified
    assert find_leak(stmt, binding, "low", values=(0, 1, 5)) is None
    emit_table(
        "E6: section 5.2 example (x=high, y=low)",
        ["mechanism", "verdict"],
        [
            ("CFM", "REJECTED (sbind(x) <= sbind(y) fails)"),
            ("flow logic", "policy proved (x's class drops to low after x := 0)"),
            ("dynamic search", "no leaking execution exists"),
        ],
    )


def test_gap_family(benchmark):
    sizes = [1, 2, 4, 8]
    cases = []
    for n in sizes:
        stmt = sanitize_then_copy(n)
        names = {"h": "high"}
        names.update({f"l{i}": "low" for i in range(n)})
        cases.append((n, stmt, StaticBinding(SCHEME, names)))

    def sweep():
        results = []
        for n, stmt, binding in cases:
            rejected = not certify(stmt, binding).certified
            proof = flow_proof_for(stmt, binding)
            proved = check_proof(proof, SCHEME).ok
            results.append((n, rejected, proved))
        return results

    results = benchmark(sweep)
    emit_table(
        "E6: sanitize-then-copy family (safe programs)",
        ["copies", "CFM rejects", "flow proof validates"],
        results,
    )
    assert all(rejected and proved for _, rejected, proved in results)


def test_gap_programs_never_leak():
    for n in (1, 3):
        stmt = sanitize_then_copy(n)
        classes = {"h": "high"}
        classes.update({f"l{i}": "low" for i in range(n)})
        binding = StaticBinding(SCHEME, classes)
        assert find_leak(stmt, binding, "low", values=(0, 2)) is None
