"""E9 — end-to-end soundness of certification.

For random certified (program, binding) pairs: (a) the dynamic label of
every variable stays below its binding on a monitored run, and (b) the
sets of observer-visible outcome stores are identical across high-input
variations (possibilistic, status-blind noninterference — termination
status itself is a covert channel the paper scopes out in section 1).
"""

from benchmarks._util import emit_table
from repro.lang.ast import Signal, Wait, iter_statements, used_variables
from repro.lattice.chain import two_level
from repro.runtime.executor import run
from repro.runtime.explorer import explore
from repro.runtime.taint import TaintMonitor
from repro.workloads.generators import random_certified_case

SCHEME = two_level()


def _cases(n=20, size=16):
    return [
        random_certified_case(seed, SCHEME, size=size, runtime_safe=True,
                              n_pins=3, p_cobegin=0.25)
        for seed in range(n)
    ]


def test_dynamic_label_soundness(benchmark):
    cases = _cases()

    def sweep():
        sound = 0
        for prog, binding in cases:
            monitor = TaintMonitor.from_binding(binding, used_variables(prog.body))
            result = run(prog, monitor=monitor, max_steps=200_000)
            assert result.completed
            if monitor.respects(binding):
                sound += 1
        return sound

    sound = benchmark(sweep)
    emit_table(
        "E9a: dynamic labels vs static bindings (certified programs)",
        ["certified programs", "dynamically sound"],
        [(len(cases), sound)],
    )
    assert sound == len(cases)


def test_possibilistic_noninterference(benchmark):
    cases = _cases(n=12, size=12)

    def sweep():
        checked = held = 0
        for prog, binding in cases:
            names = used_variables(prog.body)
            sems = {
                s.sem
                for s in iter_statements(prog.body)
                if isinstance(s, (Wait, Signal))
            }
            high = [n for n in names
                    if binding.of_var(n) == "high" and n not in sems]
            if not high:
                continue
            low = frozenset(n for n in names if binding.of_var(n) == "low")
            sets = []
            complete = True
            for value in (0, 2):
                res = explore(prog, store={high[0]: value},
                              max_states=30_000, max_depth=500)
                complete = complete and res.complete
                sets.append(frozenset(o.project(low).store for o in res.outcomes))
            if not complete:
                continue
            checked += 1
            if sets[0] == sets[1]:
                held += 1
        return checked, held

    checked, held = benchmark(sweep)
    emit_table(
        "E9b: possibilistic noninterference across all schedules",
        ["checked", "noninterfering"],
        [(checked, held)],
    )
    assert held == checked
