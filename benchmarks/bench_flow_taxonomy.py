"""E8 — Section 2.2: the flow taxonomy, statically and dynamically.

For each of the paper's three section 2.2 fragments — a local indirect
flow (if), a global flow from conditional termination (while), and a
global flow from synchronization (cobegin/wait) — we confirm that
(a) CFM flags the flow, and (b) the dynamic substrate demonstrates it:
the taint monitor labels the sink high, and exhaustive exploration
finds observably different outcomes.
"""

import pytest

from benchmarks._util import emit_table
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.lang.ast import used_variables
from repro.lattice.chain import two_level
from repro.runtime.executor import run
from repro.runtime.noninterference import check_noninterference
from repro.runtime.taint import TaintMonitor
from repro.workloads.paper import (
    section22_cobegin_fragment,
    section22_if_fragment,
    section22_while_fragment,
)

SCHEME = two_level()

FRAGMENTS = {
    "local-indirect (if)": (
        section22_if_fragment,
        {"x": "high", "y": "low"},
        "y",
        {"x": 0},
    ),
    "global-termination (while)": (
        section22_while_fragment,
        {"x": "high", "y": "high", "z": "low"},
        "z",
        {"x": 0},
    ),
    "global-synchronization (wait)": (
        section22_cobegin_fragment,
        {"x": "high", "sem": "low", "y": "low"},
        "y",
        {"x": 0},
    ),
}


def test_taxonomy_table():
    rows = []
    for name, (factory, classes, sink, store) in FRAGMENTS.items():
        stmt = factory()
        binding = StaticBinding(SCHEME, classes)
        rejected = not certify(stmt, binding).certified
        stmt2 = factory()
        monitor = TaintMonitor.from_binding(binding, used_variables(stmt2))
        run(stmt2, store=store, monitor=monitor, max_steps=10_000)
        sink_label = monitor.state.cls(sink)
        rows.append((name, "rejected" if rejected else "MISSED",
                     f"{sink} -> {sink_label}"))
        assert rejected, name
        assert sink_label == "high", name
    emit_table(
        "E8: section 2.2 flow taxonomy (sink must end labelled high)",
        ["flow kind", "CFM", "dynamic label"],
        rows,
    )


@pytest.mark.parametrize("name", sorted(FRAGMENTS))
def test_fragment_interferes(benchmark, name):
    factory, classes, sink, _ = FRAGMENTS[name]
    binding = StaticBinding(SCHEME, classes)

    def check():
        return check_noninterference(
            factory(), binding, "low", [{"x": 0}, {"x": 1}], max_depth=200
        )

    result = benchmark(check)
    assert not result.holds, name


def test_taint_monitor_overhead(benchmark):
    """Monitoring cost on a straight-line run (pure execution baseline
    is benchmarked by the executor tests)."""
    stmt = section22_while_fragment()
    binding = StaticBinding(SCHEME, {"x": "high", "y": "high", "z": "low"})

    def monitored():
        monitor = TaintMonitor.from_binding(binding, used_variables(stmt))
        # x = 0 exits the loop immediately; the guard evaluation still
        # raises global, which is the flow being measured.
        return run(stmt, store={"x": 0}, monitor=monitor, max_steps=10_000)

    result = benchmark(monitored)
    assert result.completed
