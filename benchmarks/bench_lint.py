"""Static lint vs. the exhaustive explorer: the polynomial/exponential gap.

The point of ``repro.staticlint`` is that its answers cost a CFG and a
few fixpoints, while ``find_deadlock`` pays for every interleaving.
This benchmark times both on generated programs of increasing size and
records the wall-time ratio, emitting ``BENCH_lint.json`` for diffing
across commits.  The explorer runs with a capped state budget, so its
column reads "time to explore up to the cap" once programs stop being
exhaustible — the lint column keeps scaling.
"""

import time

from benchmarks._util import emit_table, write_bench_json
from repro.analysis.deadlock import find_deadlock
from repro.lang.ast import program_size
from repro.staticlint import run_lint
from repro.workloads.generators import sized_program

SIZES = [20, 50, 100, 200, 400]
SEED = 11
MAX_STATES = 20_000


def _time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_lint_vs_explorer_walltime():
    rows = []
    records = []
    for size in SIZES:
        program = sized_program(
            SEED, size, p_cobegin=0.25, p_sem_op=0.1, runtime_safe=True
        )
        n = program_size(program.body)
        t_lint, lint_result = _time(lambda: run_lint(program))
        t_dyn, dyn_result = _time(
            lambda: find_deadlock(program, max_states=MAX_STATES)
        )
        ratio = t_dyn / t_lint if t_lint > 0 else float("inf")
        rows.append(
            (
                n,
                f"{t_lint * 1e3:.2f}",
                len(lint_result.diagnostics),
                f"{t_dyn * 1e3:.2f}",
                dyn_result.states_visited,
                "yes" if dyn_result.complete else "capped",
                f"{ratio:.1f}x",
            )
        )
        records.append(
            {
                "statements": n,
                "lint_seconds": t_lint,
                "lint_findings": len(lint_result.diagnostics),
                "explorer_seconds": t_dyn,
                "explorer_states": dyn_result.states_visited,
                "explorer_complete": dyn_result.complete,
                "ratio": ratio,
            }
        )
        # the static pass must stay sound against whatever the capped
        # explorer still proves
        if not dyn_result.deadlock_free:
            static = __import__(
                "repro.staticlint", fromlist=["static_deadlock"]
            ).static_deadlock(program)
            assert static.may_deadlock

    emit_table(
        "repro lint vs find_deadlock (wall time)",
        ["stmts", "lint ms", "findings", "explorer ms", "states", "complete", "ratio"],
        rows,
    )
    path = write_bench_json(
        "lint",
        {
            "seed": SEED,
            "max_states": MAX_STATES,
            "sizes": SIZES,
            "rows": records,
        },
    )
    print(f"wrote {path}")
    # sanity: lint must finish the largest size in interactive time
    assert records[-1]["lint_seconds"] < 5.0
