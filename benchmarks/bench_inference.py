"""E10 — binding inference and the global-flow ablation.

(a) Cost of inferring least bindings over the corpora.  (b) Ablation
quantifying what the Dennings' mechanism misses: over random concurrent
programs with one high-pinned variable, how often does the sequential
view (no global flows) accept a binding that CFM rejects?
"""

import random

from benchmarks._util import emit_table
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.core.inference import infer_binding
from repro.lang.ast import used_variables
from repro.lattice.chain import two_level
from repro.workloads.suites import corpus

SCHEME = two_level()


def test_inference_throughput(benchmark):
    cases = corpus("concurrent")

    def infer_all():
        sat = 0
        for _, prog in cases:
            if infer_binding(prog, SCHEME, {}).satisfiable:
                sat += 1
        return sat

    assert benchmark(infer_all) == len(cases)


def test_inference_with_pins(benchmark):
    cases = []
    for name, prog in corpus("concurrent"):
        names = sorted(used_variables(prog.body))
        rng = random.Random(hash(name) & 0xFFFF)
        pins = {rng.choice(names): "high"}
        cases.append((prog, pins))

    def infer_all():
        return sum(
            1 for prog, pins in cases
            if infer_binding(prog, SCHEME, pins).satisfiable
        )

    sat = benchmark(infer_all)
    assert sat == len(cases)  # one pin is always completable upward


def test_global_flow_ablation():
    """How often do global flows matter?  For each concurrent program,
    pin one variable high and bind the rest low: compare the sequential
    (Denning) verdict with CFM's."""
    both_reject = only_cfm_rejects = both_accept = 0
    for name, prog in corpus("concurrent"):
        names = sorted(used_variables(prog.body))
        rng = random.Random(hash(name) & 0xFFFF)
        high = rng.choice(names)
        classes = {n: ("high" if n == high else "low") for n in names}
        binding = StaticBinding(SCHEME, classes)
        cfm = certify(prog, binding).certified
        den = certify_denning(prog, binding, on_concurrency="ignore").certified
        assert not (cfm and not den)  # CFM is strictly stronger
        if cfm:
            both_accept += 1
        elif den:
            only_cfm_rejects += 1
        else:
            both_reject += 1
    emit_table(
        "E10: global-flow ablation on the concurrent corpus "
        "(one variable high, rest low)",
        ["both accept", "only CFM rejects (missed flows)", "both reject"],
        [(both_accept, only_cfm_rejects, both_reject)],
    )
    # The corpus must actually demonstrate the paper's gap.
    assert only_cfm_rejects > 0


def test_unsat_detection_speed(benchmark):
    from repro.workloads.paper import figure3_program

    def infer():
        return infer_binding(figure3_program(), SCHEME, {"x": "high", "y": "low"})

    result = benchmark(infer)
    assert not result.satisfiable
