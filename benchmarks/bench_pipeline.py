"""Pipeline throughput and POR effectiveness, as one diffable artifact.

Two experiments, emitted together as ``BENCH_pipeline.json``:

* **throughput** — the same corpus x analyses matrix run three ways:
  serially (``jobs=1``, no cache), parallel (``jobs=4``, no cache) and
  serially over a pre-warmed cache.  All three documents are asserted
  byte-identical (the determinism contract), and the wall-clock ratios
  are recorded.  The parallel ratio is hardware-bound: on a
  single-core container it cannot exceed ~1x, so the artifact records
  ``cpu_count`` and the assertion only applies where the hardware can
  deliver it.  The warm-cache ratio is hardware-independent.

* **chunk_sweep** — the parallel matrix re-run across dispatch
  granularities (``chunk_size`` 1 / auto / one-chunk): wall time and
  the chunking counters (chunks submitted, cells carried, bytes
  pickled) per granularity, every document asserted byte-identical to
  the serial baseline.  This is the dial the chunking work exists to
  turn: per-cell dispatch pays executor+pickle overhead per cell,
  auto amortizes it.

* **observe** — the same serial matrix with the trace sink off vs
  streaming to a JSON-lines file: the observability layer must be
  read-only (byte-identical documents) and near-free (a loose
  overhead gate in full mode).

* **por** — naive vs reduced exploration over the litmus suite and a
  runtime-safe concurrent corpus: states visited by each, and an
  outcome-set comparison that must show zero differences.

Run standalone (``python benchmarks/bench_pipeline.py [--smoke]``,
wired to ``make bench-pipeline`` and the CI smoke job) or via pytest
(``pytest benchmarks/bench_pipeline.py``, which uses the smoke corpus
to keep ``make bench`` fast).
"""

import argparse
import multiprocessing
import sys
import time

from benchmarks._util import emit_table, write_bench_json
from repro.lang.ast import Cobegin, iter_nodes
from repro.pipeline import run_pipeline
from repro.runtime.explorer import explore
from repro.workloads.generators import random_program
from repro.workloads.litmus import CASES

#: Analyses for the throughput matrix: the certification hot path plus
#: the explorer (which dominates, making the corpus worth parallelizing).
ANALYSES = ("cert", "denning", "lint", "explore")

MAX_STATES = 60_000


def bench_corpus(smoke: bool):
    """Litmus cases plus runtime-safe concurrent generator output.

    The generated programs are the "concurrent corpus" of this
    benchmark: explorable under every schedule (so outcome sets can be
    compared exhaustively) with real semaphore traffic and cobegins.
    Seeds whose program came out with no ``cobegin`` at all (the
    generator does not guarantee one) are skipped — a sequential
    program says nothing about interleaving reduction.
    """
    corpus = [(case.name, case.statement()) for case in CASES]
    n, size = (4, 14) if smoke else (24, 22)
    seed, found = 6200, 0
    while found < n:
        program = random_program(
            seed=seed,
            size=size,
            runtime_safe=True,
            p_cobegin=0.3,
            n_sems=2,
        )
        seed += 1
        if not any(isinstance(node, Cobegin) for node in iter_nodes(program)):
            continue
        corpus.append((f"con-{found:02d}", program))
        found += 1
    return corpus


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def throughput_experiment(corpus, cache_dir: str, jobs: int):
    """Serial vs parallel vs warm-cache over the same matrix."""
    config = {"max_states": MAX_STATES}
    t_serial, serial = _timed(
        lambda: run_pipeline(corpus, ANALYSES, jobs=1, use_cache=False, config=config)
    )
    t_parallel, parallel = _timed(
        lambda: run_pipeline(corpus, ANALYSES, jobs=jobs, use_cache=False, config=config)
    )
    run_pipeline(corpus, ANALYSES, jobs=1, cache_dir=cache_dir, config=config)
    t_warm, warm = _timed(
        lambda: run_pipeline(corpus, ANALYSES, jobs=1, cache_dir=cache_dir, config=config)
    )
    assert serial.to_json() == parallel.to_json() == warm.to_json(), (
        "determinism contract violated across execution strategies"
    )
    assert warm.stats["computed"] == 0
    return {
        "programs": len(corpus),
        "analyses": list(ANALYSES),
        "jobs": jobs,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "warm_cache_seconds": t_warm,
        "speedup_parallel": t_serial / t_parallel if t_parallel > 0 else float("inf"),
        "speedup_warm_cache": t_warm and t_serial / t_warm,
        "chunks": dict(parallel.metrics["chunks"]),
        "errors": len(serial.errors()),
    }, serial.to_json()


def chunk_sweep_experiment(corpus, jobs: int, expected_json: str):
    """The parallel matrix across dispatch granularities.

    Every document must equal the serial baseline — ``chunk_size`` is
    an execution-strategy knob with a byte-identity contract.
    """
    config = {"max_states": MAX_STATES}
    cells = len(corpus) * len(ANALYSES)
    rows = []
    for label, chunk_size in (("1", 1), ("auto", None), ("all", cells)):
        seconds, result = _timed(
            lambda size=chunk_size: run_pipeline(
                corpus, ANALYSES, jobs=jobs, use_cache=False,
                config=config, chunk_size=size,
            )
        )
        assert result.to_json() == expected_json, (
            f"chunk_size={label} changed the document"
        )
        counters = result.metrics["chunks"]
        rows.append(
            {
                "chunk_size": label,
                "seconds": seconds,
                "chunks_submitted": counters["submitted"],
                "cells": counters["cells"],
                "bytes_pickled": counters["bytes_pickled"],
            }
        )
    return {"jobs": jobs, "cells": cells, "rows": rows}


def observe_overhead_experiment(corpus):
    """Cost of the observability layer: no sink vs a live JSONL sink.

    The metrics aggregation itself is always on (it is how degraded
    and crashed cells get reported), so the measurable knob is the
    trace sink.  The documents must stay byte-identical either way —
    observability is read-only by contract.
    """
    import os
    import tempfile

    from repro.observe import JsonlEmitter, validate_metrics

    config = {"max_states": MAX_STATES}
    t_off, off = _timed(
        lambda: run_pipeline(corpus, ANALYSES, jobs=1, use_cache=False, config=config)
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trace.jsonl")
        emitter = JsonlEmitter(path=path)
        try:
            t_on, on = _timed(
                lambda: run_pipeline(
                    corpus, ANALYSES, jobs=1, use_cache=False,
                    config=config, trace=emitter,
                )
            )
        finally:
            emitter.close()
        with open(path, "r", encoding="utf-8") as handle:
            trace_records = sum(1 for _ in handle)
    assert off.to_json() == on.to_json(), (
        "the trace sink changed the result document"
    )
    return {
        "disabled_seconds": t_off,
        "tracing_seconds": t_on,
        "overhead": (t_on / t_off - 1.0) if t_off > 0 else 0.0,
        "trace_records": trace_records,
        "metrics_valid": validate_metrics(on.metrics) == [],
    }


def por_experiment(corpus):
    """Naive vs POR explorer: states visited and outcome-set equality."""
    rows = []
    for name, subject in corpus:
        naive = explore(subject, max_states=MAX_STATES, por=False)
        reduced = explore(subject, max_states=MAX_STATES, por=True)
        outcomes_equal = frozenset(
            (o.status, o.store) for o in naive.outcomes
        ) == frozenset((o.status, o.store) for o in reduced.outcomes)
        rows.append(
            {
                "program": name,
                "concurrent": name.startswith("con-"),
                "states_naive": naive.states_visited,
                "states_por": reduced.states_visited,
                "reduction": (
                    1 - reduced.states_visited / naive.states_visited
                    if naive.states_visited
                    else 0.0
                ),
                "outcomes_equal": outcomes_equal,
                "complete": naive.complete and reduced.complete,
            }
        )
    concurrent = [r for r in rows if r["concurrent"]]
    reduced_count = sum(
        1 for r in concurrent if r["states_por"] < r["states_naive"]
    )
    return {
        "programs": rows,
        "mismatches": sum(1 for r in rows if not r["outcomes_equal"]),
        "concurrent_programs": len(concurrent),
        "concurrent_reduced": reduced_count,
        "concurrent_reduced_fraction": (
            reduced_count / len(concurrent) if concurrent else 0.0
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, no perf assertions (CI per-PR mode)",
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root for the warm-cache column (default: a temp dir)",
    )
    args = parser.parse_args(argv)

    import tempfile

    corpus = bench_corpus(args.smoke)
    with tempfile.TemporaryDirectory() as tmp:
        throughput, serial_json = throughput_experiment(
            corpus, args.cache_dir or tmp, args.jobs
        )
    chunk_sweep = chunk_sweep_experiment(corpus, args.jobs, serial_json)
    observe = observe_overhead_experiment(corpus)
    por = por_experiment(corpus)

    emit_table(
        "pipeline throughput (serial vs parallel vs warm cache)",
        ["mode", "seconds", "speedup"],
        [
            ("serial", f"{throughput['serial_seconds']:.2f}", "1.0x"),
            (
                f"parallel (jobs={args.jobs})",
                f"{throughput['parallel_seconds']:.2f}",
                f"{throughput['speedup_parallel']:.1f}x",
            ),
            (
                "warm cache",
                f"{throughput['warm_cache_seconds']:.2f}",
                f"{throughput['speedup_warm_cache']:.1f}x",
            ),
        ],
    )
    emit_table(
        "chunked dispatch sweep (parallel, by chunk size)",
        ["chunk size", "seconds", "chunks", "bytes pickled"],
        [
            (
                row["chunk_size"],
                f"{row['seconds']:.2f}",
                row["chunks_submitted"],
                row["bytes_pickled"],
            )
            for row in chunk_sweep["rows"]
        ],
    )
    emit_table(
        "observability overhead (trace sink off vs on)",
        ["mode", "seconds", "trace records"],
        [
            ("no sink", f"{observe['disabled_seconds']:.2f}", "-"),
            (
                "jsonl sink",
                f"{observe['tracing_seconds']:.2f}",
                observe["trace_records"],
            ),
        ],
    )
    concurrent_rows = [r for r in por["programs"] if r["concurrent"]]
    emit_table(
        "explorer partial-order reduction (concurrent corpus)",
        ["program", "naive states", "POR states", "reduction", "outcomes"],
        [
            (
                r["program"],
                r["states_naive"],
                r["states_por"],
                f"{r['reduction'] * 100:.0f}%",
                "equal" if r["outcomes_equal"] else "DIFFER",
            )
            for r in concurrent_rows
        ],
    )

    payload = {
        "smoke": args.smoke,
        "cpu_count": multiprocessing.cpu_count(),
        "throughput": throughput,
        "chunk_sweep": chunk_sweep,
        "observe": observe,
        "por": por,
    }
    path = write_bench_json("pipeline", payload)
    print(f"wrote {path}")

    # Correctness gates hold in every mode.
    assert por["mismatches"] == 0, "POR changed an outcome set"
    assert observe["metrics_valid"], "metrics document failed validation"
    # The chunking gate also holds in smoke mode wherever the cores
    # exist: with >= 2 cores, jobs > 1 must actually beat serial.
    if multiprocessing.cpu_count() >= 2:
        assert throughput["speedup_parallel"] > 1.0, throughput
    else:
        print(
            f"note: {multiprocessing.cpu_count()} CPU(s) — parallel "
            "> serial gate skipped (needs >= 2 cores)",
            file=sys.stderr,
        )
    if args.smoke:
        return 0
    # Perf gates: warm cache is hardware-independent; parallel speedup
    # needs the cores to exist.  The trace-sink gate is loose — it only
    # has to catch an accidental hot-path regression, not wall noise.
    assert observe["overhead"] <= 0.25, observe
    assert throughput["speedup_warm_cache"] >= 10, throughput
    assert por["concurrent_reduced_fraction"] >= 0.5, por
    if multiprocessing.cpu_count() >= 4:
        assert throughput["speedup_parallel"] >= 3, throughput
    else:
        print(
            f"note: {multiprocessing.cpu_count()} CPU(s) — parallel "
            "speedup gate skipped (needs >= 4 cores)",
            file=sys.stderr,
        )
    return 0


def test_pipeline_bench_smoke():
    """Pytest entry point (``make bench``): the smoke-mode run."""
    assert main(["--smoke", "--jobs", "2"]) == 0


if __name__ == "__main__":
    sys.exit(main())
