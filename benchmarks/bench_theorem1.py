"""E4 — Theorem 1: certified programs yield completely invariant proofs.

For a corpus of random certified (program, binding) pairs: generate the
Theorem 1 proof, verify it with the independent checker, and confirm
complete invariance — timing generation and checking separately.
"""

from benchmarks._util import emit_table
from repro.core.cfm import certify
from repro.lattice.chain import two_level
from repro.logic.checker import check_proof
from repro.logic.extract import is_completely_invariant
from repro.logic.generator import generate_proof
from repro.workloads.generators import random_certified_case

SCHEME = two_level()
CORPUS_SEEDS = range(25)


def _cases():
    return [
        random_certified_case(seed, SCHEME, size=35, n_pins=3)
        for seed in CORPUS_SEEDS
    ]


def test_generation_throughput(benchmark):
    cases = _cases()

    def generate_all():
        proofs = []
        for prog, binding in cases:
            proofs.append(generate_proof(prog, binding))
        return proofs

    proofs = benchmark(generate_all)
    assert len(proofs) == len(cases)


def test_generated_proofs_all_verify(benchmark):
    cases = _cases()
    proofs = [
        (prog, binding, generate_proof(prog, binding)) for prog, binding in cases
    ]

    def check_all():
        return sum(1 for _, _, proof in proofs if check_proof(proof, SCHEME).ok)

    ok = benchmark(check_all)
    assert ok == len(proofs)
    rows = []
    total_rules = 0
    for i, (prog, binding, proof) in enumerate(proofs[:8]):
        from repro.lang.ast import program_size

        total_rules += proof.size()
        rows.append((i, program_size(prog.body), proof.size(),
                     is_completely_invariant(proof, binding)))
    emit_table(
        "E4: Theorem 1 over random certified programs (first 8 shown)",
        ["case", "statements", "rule apps", "completely invariant"],
        rows,
    )
    assert all(
        is_completely_invariant(proof, binding) for _, binding, proof in proofs
    )


def test_proof_size_scales_linearly():
    """Proof size tracks program size (the construction is syntax-directed)."""
    rows = []
    for size in (10, 40, 160):
        prog, binding = random_certified_case(99, SCHEME, size=size, n_pins=2)
        proof = generate_proof(prog, binding)
        from repro.lang.ast import program_size

        n = program_size(prog.body)
        rows.append((size, n, proof.size(), round(proof.size() / n, 2)))
    emit_table(
        "E4: proof size vs program size",
        ["target", "statements", "rule apps", "apps/stmt"],
        rows,
    )
    # Syntax-directed: a bounded number of rule applications per statement.
    for _, n, apps, _ in rows:
        assert apps <= 4 * n + 4
