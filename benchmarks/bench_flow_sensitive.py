"""E11 — the flow-sensitive mechanism (extension): precision and cost.

Quantifies the section 5.2 gap that the flow-sensitive certifier
closes: acceptance rates of Denning / CFM / flow-sensitive over a
corpus of random programs with random bindings, cost relative to CFM's
single pass, and proof-search throughput (analysis -> checked Figure 1
proof) for sequential programs.
"""

import random

from benchmarks._util import emit_table
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.core.flowsensitive import analyze, certify_flow_sensitive
from repro.core.inference import infer_binding
from repro.lang.ast import used_variables
from repro.lattice.chain import two_level
from repro.logic.checker import check_proof
from repro.logic.search import proof_from_analysis
from repro.workloads.generators import random_program, sized_program

SCHEME = two_level()


def _sanitizing_cases(n=40):
    """Random programs prefixed by a sanitizer of one high variable —
    the pattern where flow-sensitivity genuinely matters.

    The secret is chosen among variables the program actually *reads
    into other variables or guards*, so under Definition 3 (classes
    attached to names, not values) CFM is forced to reject every case,
    although each is safe: the secret's value is overwritten by the
    constant 0 before the program proper starts.
    """
    from repro.lang import builder as b
    from repro.lang.ast import Assign, If, While, expr_variables, iter_statements

    cases = []
    seed = 0
    while len(cases) < n:
        prog = random_program(seed, size=24, p_cobegin=0.15, p_sem_op=0.1)
        seed += 1
        leaked_from = set()
        for node in iter_statements(prog.body):
            if isinstance(node, Assign):
                # Read into a *different* variable: a guaranteed CFM
                # violation once the source is bound high.
                leaked_from |= expr_variables(node.expr) - {node.target}
        if not leaked_from:
            continue
        rng = random.Random(seed)
        secret = rng.choice(sorted(leaked_from))
        names = sorted(used_variables(prog.body))
        stmt = b.begin(b.assign(secret, 0), prog.body)
        classes = {v: "low" for v in names}
        classes[secret] = "high"
        cases.append((stmt, StaticBinding(SCHEME, classes)))
    return cases


def test_acceptance_rates():
    cases = _sanitizing_cases()
    counts = {"denning": 0, "cfm": 0, "flow-sensitive": 0}
    for stmt, binding in cases:
        if certify_denning(stmt, binding, on_concurrency="ignore").certified:
            counts["denning"] += 1
        if certify(stmt, binding).certified:
            counts["cfm"] += 1
        if certify_flow_sensitive(stmt, binding).certified:
            counts["flow-sensitive"] += 1
    emit_table(
        "E11: acceptance on sanitize-one-secret programs (all are safe "
        "w.r.t. the secret: it is overwritten by 0 first)",
        ["mechanism", "accepted", f"of {len(cases)}"],
        [
            ("Denning-Denning (naive)", counts["denning"], ""),
            ("CFM", counts["cfm"], ""),
            ("flow-sensitive", counts["flow-sensitive"], ""),
        ],
    )
    # CFM can never accept these (sbind(secret)=high flows by Def. 3
    # even after sanitizing); the flow-sensitive analysis accepts all.
    assert counts["cfm"] == 0
    assert counts["flow-sensitive"] == len(cases)


def test_flow_sensitive_throughput(benchmark):
    cases = _sanitizing_cases(20)

    def sweep():
        return sum(
            1 for stmt, binding in cases
            if certify_flow_sensitive(stmt, binding).certified
        )

    assert benchmark(sweep) == len(cases)


def test_cost_relative_to_cfm(benchmark):
    """Same program, certified by both; the flow-sensitive pass costs a
    small multiple of CFM (loop fixpoints terminate quickly on finite
    lattices)."""
    prog = sized_program(3, 2_000, p_cobegin=0.1, p_sem_op=0.05)
    binding = infer_binding(prog, SCHEME, {}).binding

    import time

    t0 = time.perf_counter()
    certify(prog, binding)
    cfm_time = time.perf_counter() - t0

    report = benchmark(lambda: certify_flow_sensitive(prog, binding))
    assert report.certified
    emit_table(
        "E11: cost on a 2000-statement program",
        ["mechanism", "one pass (ms)"],
        [("CFM", f"{cfm_time * 1e3:.2f}"),
         ("flow-sensitive", "see pytest-benchmark row")],
    )


def test_proof_search_throughput(benchmark):
    cases = []
    for seed in range(15):
        prog = random_program(seed, size=25, p_cobegin=0.0, p_sem_op=0.0)
        binding = infer_binding(prog, SCHEME, {}).binding
        cases.append((prog, binding))

    def prove_all():
        ok = 0
        for prog, binding in cases:
            report = analyze(prog, binding)
            proof = proof_from_analysis(prog, binding, report)
            if check_proof(proof, SCHEME).ok:
                ok += 1
        return ok

    assert benchmark(prove_all) == len(cases)
