"""E7 — Section 6: "both mechanisms can be computed in time proportional
to the length of the program, once the program has been parsed".

Times CFM and the Denning baseline on pre-parsed programs from ~100 to
~10,000 statements, prints the per-statement cost, and fits the log-log
scaling exponent (1.0 = linear).
"""

import time

import pytest

from benchmarks._util import emit_table, loglog_slope
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.lang.ast import program_size, used_variables
from repro.lattice.chain import two_level
from repro.workloads.generators import sized_program

SCHEME = two_level()
SIZES = [100, 300, 1_000, 3_000, 10_000]


def _case(size):
    prog = sized_program(7, size, p_cobegin=0.15, p_sem_op=0.1)
    binding = StaticBinding(
        SCHEME, {}, default="low"
    ).with_bindings({n: "low" for n in used_variables(prog.body)})
    return prog, binding


def _time(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_linearity_table():
    rows = []
    sizes, cfm_times, den_times = [], [], []
    for size in SIZES:
        prog, binding = _case(size)
        n = program_size(prog.body)
        t_cfm = _time(lambda: certify(prog, binding))
        t_den = _time(lambda: certify_denning(prog, binding, on_concurrency="ignore"))
        sizes.append(n)
        cfm_times.append(t_cfm)
        den_times.append(t_den)
        rows.append(
            (
                n,
                f"{t_cfm * 1e3:.2f}",
                f"{t_cfm / n * 1e6:.2f}",
                f"{t_den * 1e3:.2f}",
                f"{t_den / n * 1e6:.2f}",
            )
        )
    slope_cfm = loglog_slope(sizes, cfm_times)
    slope_den = loglog_slope(sizes, den_times)
    emit_table(
        "E7: certification time vs program length (post-parse)",
        ["statements", "CFM ms", "CFM us/stmt", "Denning ms", "Denning us/stmt"],
        rows,
    )
    print(f"scaling exponent: CFM {slope_cfm:.3f}, Denning {slope_den:.3f} "
          f"(1.0 = the paper's linear claim)")
    # Near-linear: allow measurement noise and dict-resize effects.
    assert slope_cfm < 1.35, slope_cfm
    assert slope_den < 1.35, slope_den


@pytest.mark.parametrize("size", [300, 3_000])
def test_cfm_certification_speed(benchmark, size):
    prog, binding = _case(size)
    report = benchmark(lambda: certify(prog, binding))
    assert report.certified


@pytest.mark.parametrize("size", [300, 3_000])
def test_denning_certification_speed(benchmark, size):
    prog, binding = _case(size)
    report = benchmark(
        lambda: certify_denning(prog, binding, on_concurrency="ignore")
    )
    assert report.certified


def test_parse_time_excluded_note(benchmark):
    """The claim is post-parse; parsing itself is also near-linear but
    measured separately for transparency."""
    from repro.lang.parser import parse_program
    from repro.lang.pretty import pretty

    source = pretty(sized_program(7, 2_000))
    prog = benchmark(lambda: parse_program(source))
    assert program_size(prog.body) > 1_000
