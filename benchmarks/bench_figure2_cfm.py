"""E2 — Figure 2: the Concurrent Flow Mechanism.

Reproduces the certification decisions of Figure 2 on the paper's
section 4.2 examples and measures CFM throughput on the sequential and
concurrent corpora.
"""

import pytest

from benchmarks._util import emit_table
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.inference import infer_binding
from repro.lattice.chain import two_level
from repro.workloads.paper import section42_composition, section42_loop
from repro.workloads.suites import corpus

SCHEME = two_level()


def _bindings_for(subjects):
    """Pair every corpus program with its inferred (certifying) binding."""
    out = []
    for name, prog in subjects:
        binding = infer_binding(prog, SCHEME, {}).binding
        out.append((name, prog, binding))
    return out


def test_section42_decisions():
    """The two new checks of section 4.2, exactly as the paper states."""
    loop = section42_loop()
    comp = section42_composition()
    rows = []
    for name, stmt, classes, expect in [
        ("4.2 loop", loop, {"sem": "high", "y": "low"}, False),
        ("4.2 loop", section42_loop(), {"sem": "low", "y": "low"}, True),
        ("4.2 comp", comp, {"sem": "high", "y": "low"}, False),
        ("4.2 comp", section42_composition(), {"sem": "low", "y": "high"}, True),
    ]:
        got = certify(stmt, StaticBinding(SCHEME, classes)).certified
        assert got == expect, (name, classes)
        rows.append((name, classes, "certified" if got else "rejected"))
    emit_table(
        "E2: section 4.2 certification decisions (paper: reject high sem -> low y)",
        ["example", "binding", "CFM"],
        rows,
    )


@pytest.mark.parametrize("corpus_name", ["sequential", "concurrent"])
def test_cfm_throughput(benchmark, corpus_name):
    cases = _bindings_for(corpus(corpus_name))

    def run_all():
        certified = 0
        for _, prog, binding in cases:
            if certify(prog, binding).certified:
                certified += 1
        return certified

    certified = benchmark(run_all)
    assert certified == len(cases)  # inferred bindings always certify


def test_cfm_rejection_throughput(benchmark):
    """Rejection costs the same single pass as acceptance."""
    cases = []
    for name, prog in corpus("concurrent"):
        from repro.lang.ast import used_variables

        names = sorted(used_variables(prog.body))
        classes = {n: "low" for n in names}
        classes[names[0]] = "high"
        cases.append((prog, StaticBinding(SCHEME, classes)))

    def run_all():
        return sum(1 for prog, binding in cases if not certify(prog, binding).certified)

    rejected = benchmark(run_all)
    emit_table(
        "E2: concurrent corpus with first-variable-high bindings",
        ["programs", "rejected"],
        [(len(cases), rejected)],
    )
