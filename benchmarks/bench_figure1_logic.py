"""E1 — Figure 1: the information flow logic.

Exercises every proof rule: generated proofs over the paper corpus are
checked by the independent verifier (timing the checker), the paper's
hand proof of section 5.2 validates, and perturbed proofs are rejected.
"""

import pytest

from benchmarks._util import emit_table
from repro.core.binding import StaticBinding
from repro.core.inference import infer_binding
from repro.lattice.chain import two_level
from repro.lattice.extended import ExtendedLattice
from repro.logic.checker import action_substitution, check_proof
from repro.logic.generator import generate_proof
from repro.logic.proof import ProofNode
from repro.workloads.paper import paper_programs

SCHEME = two_level()
EXT = ExtendedLattice(SCHEME)


def _proof_corpus():
    cases = []
    for name, stmt in sorted(paper_programs().items()):
        binding = infer_binding(stmt, SCHEME, {}).binding
        proof = generate_proof(stmt, binding)
        cases.append((name, proof))
    return cases


def test_rule_coverage():
    """Every Figure 1 rule appears across the paper corpus proofs."""
    seen = set()
    rows = []
    for name, proof in _proof_corpus():
        rules = sorted({n.rule for n in proof.walk()})
        seen.update(rules)
        rows.append((name, proof.size(), ",".join(rules)))
    emit_table("E1: Figure 1 rules exercised per paper fragment",
               ["fragment", "rule apps", "rules"], rows)
    assert {
        "assignment", "alternation", "iteration", "composition",
        "consequence", "concurrency", "wait", "signal",
    } <= seen


def test_checker_throughput(benchmark):
    cases = _proof_corpus()

    def check_all():
        ok = 0
        for _, proof in cases:
            if check_proof(proof, SCHEME).ok:
                ok += 1
        return ok

    assert benchmark(check_all) == len(cases)


def test_checker_rejects_perturbations(benchmark):
    """Soundness of the verifier itself: tamper with each proof's root
    postcondition and confirm rejection."""
    from repro.logic.assertions import Bound, FlowAssertion, vlg_assertion
    from repro.logic.classexpr import const_expr, var_class

    cases = []
    for name, proof in _proof_corpus():
        from repro.lang.ast import used_variables

        names = sorted(used_variables(proof.stmt))
        fake_v = FlowAssertion(
            Bound(var_class(n), const_expr("low")) for n in names
        )
        # Claim everything ends low regardless of the binding: for any
        # fragment with a genuinely high variable this is underivable;
        # for the all-low fragments perturb the pre instead.
        bad_post = vlg_assertion(fake_v, const_expr("low"), const_expr("low"))
        tampered = ProofNode(
            proof.rule, proof.stmt, FlowAssertion.true(), bad_post, proof.premises
        )
        cases.append((name, tampered))

    def check_all():
        return sum(1 for _, proof in cases if not check_proof(proof, SCHEME).ok)

    rejected = benchmark(check_all)
    assert rejected == len(cases)


def test_axiom_substitution_microbench(benchmark):
    """The hot inner operation: P[x <- e (+) local (+) global]."""
    from repro.lang.parser import parse_statement
    from repro.logic.assertions import policy_assertion

    stmt = parse_statement("x := a + b + c")
    binding = StaticBinding(
        SCHEME, {"x": "high", "a": "low", "b": "low", "c": "low"}
    )
    post = policy_assertion(binding)
    mapping = action_substitution(stmt, SCHEME)

    benchmark(lambda: post.substitute(mapping, EXT))
