"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper artifact (see DESIGN.md section 3
and EXPERIMENTS.md).  Besides pytest-benchmark timings, benchmarks
print small tables in the paper's terms; run with ``-s`` to see them::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Iterable, Sequence


def emit_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned text table (visible with pytest -s)."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x) — the scaling exponent."""
    import math

    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den


def write_bench_json(name: str, payload: dict) -> str:
    """Write a benchmark artifact as ``BENCH_<name>.json`` in the repo root.

    Artifacts are machine-readable companions to the printed tables, so
    runs can be diffed across commits.  Returns the path written.
    """
    import json
    import os

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
