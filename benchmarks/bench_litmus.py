"""E12 — the litmus matrix: all mechanisms against labelled micro-programs.

Prints the compatibility matrix (ground truth vs. verdicts) that
summarizes the whole paper in one table: the 1977 baseline's misses,
CFM's conservatism, and the flow-sensitive extension's extra precision
— with zero unsound acceptances anywhere.
"""

from benchmarks._util import emit_table
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.core.flowsensitive import certify_flow_sensitive
from repro.lattice.chain import two_level
from repro.workloads.litmus import CASES, binding_for

SCHEME = two_level()


def _verdicts(case):
    stmt, binding = binding_for(case, SCHEME)
    den = certify_denning(stmt, binding, on_concurrency="ignore").certified
    stmt2, binding2 = binding_for(case, SCHEME)
    cfm = certify(stmt2, binding2).certified
    stmt3, binding3 = binding_for(case, SCHEME)
    fs = certify_flow_sensitive(stmt3, binding3).certified
    return den, cfm, fs


def test_matrix():
    rows = []
    unsound = 0
    missed_by_denning = 0
    safe_rejected_by_cfm = 0
    for case in CASES:
        den, cfm, fs = _verdicts(case)
        assert (den, cfm, fs) == (case.denning, case.cfm, case.flow_sensitive)
        if not case.secure and den:
            missed_by_denning += 1
        if not case.secure and (cfm or fs):
            unsound += 1
        if case.secure and not cfm and fs:
            safe_rejected_by_cfm += 1
        mark = lambda b: "accept" if b else "reject"
        rows.append(
            (
                case.name,
                "secure" if case.secure else "INSECURE",
                mark(den),
                mark(cfm),
                mark(fs),
            )
        )
    emit_table(
        "E12: litmus matrix (binding: h=high, rest low)",
        ["case", "ground truth", "Denning'77", "CFM'79", "flow-sensitive"],
        rows,
    )
    print(
        f"insecure cases accepted by Denning: {missed_by_denning}; "
        f"by CFM/flow-sensitive: {unsound}; "
        f"safe cases recovered by flow-sensitivity over CFM: "
        f"{safe_rejected_by_cfm}"
    )
    assert unsound == 0
    assert missed_by_denning >= 2  # the global-flow misses
    assert safe_rejected_by_cfm >= 2  # the section 5.2 family


def test_matrix_throughput(benchmark):
    def sweep():
        return [_verdicts(case) for case in CASES]

    verdicts = benchmark(sweep)
    assert len(verdicts) == len(CASES)
