"""Fuzzing throughput: oracle cost, shrink cost, campaign rate.

Three experiments, emitted together as ``BENCH_fuzz.json``:

* **oracles** — each registered oracle timed alone over the same
  generated corpus: checks/sec and the pass/skip split.  This is the
  number that says which relation dominates a campaign (the
  exploration-backed oracles should; ``parse-pretty`` should be ~free).

* **shrink** — the delta-debugging shrinker driven by a synthetic
  always-reproducing predicate over generated programs: weight
  reduction achieved, accepted iterations, predicate evaluations, and
  seconds per shrink.  The gate asserts the shrinker actually
  minimizes (mean weight reduction over 50%) — a shrinker that keeps
  findings large is broken even if every test passes.

* **campaign** — ``run_fuzz`` end to end (all oracles, serial):
  programs/sec and checks/sec, with the metrics document re-validated.
  The correctness gate is the same as CI's: zero findings and zero
  worker errors on the fixed seed range.

Run standalone (``python benchmarks/bench_fuzz.py [--smoke]``, wired
to ``make bench-fuzz`` and the CI smoke job) or via pytest
(``pytest benchmarks/bench_fuzz.py``, smoke mode, keeping ``make
bench`` fast).
"""

import argparse
import sys
import time

from benchmarks._util import emit_table, write_bench_json
from repro.fuzz import FUZZ_CONFIG, ORACLES, OracleSkip, run_fuzz, shrink
from repro.fuzz.driver import generate_subject
from repro.fuzz.shrinker import weight
from repro.lang.ast import Assign, iter_nodes
from repro.observe.metrics import validate_metrics


def _subjects(n):
    """The shared corpus: both profiles for each of ``n`` seeds."""
    out = []
    for seed in range(n):
        for profile in ("static", "runtime_safe"):
            out.append((profile, generate_subject(seed, profile)))
    return out


def bench_oracles(n_seeds):
    subjects = _subjects(n_seeds)
    config = dict(FUZZ_CONFIG)
    rows = []
    for name in sorted(ORACLES):
        spec = ORACLES[name]
        applicable = [s for p, s in subjects if p in spec.profiles]
        passes = skips = violations = 0
        start = time.perf_counter()
        for subject in applicable:
            try:
                outcome = spec.check(subject, config)
            except Exception:  # noqa: BLE001 - counted, like the driver does
                violations += 1
                continue
            if outcome is None:
                passes += 1
            elif isinstance(outcome, OracleSkip):
                skips += 1
            else:
                violations += 1
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "oracle": name,
                "checks": len(applicable),
                "passes": passes,
                "skips": skips,
                "violations": violations,
                "seconds": round(elapsed, 4),
                "checks_per_sec": round(len(applicable) / elapsed, 1)
                if elapsed
                else None,
            }
        )
    return rows


def _has_assign(subject):
    stmt = subject.body if hasattr(subject, "decls") else subject
    return any(isinstance(n, Assign) for n in iter_nodes(stmt))


def bench_shrink(n_seeds):
    rows = []
    for seed in range(n_seeds):
        program = generate_subject(seed, "runtime_safe")
        if not _has_assign(program):
            continue
        start = time.perf_counter()
        result = shrink(program, _has_assign)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "seed": seed,
                "weight_before": result.weight_before,
                "weight_after": result.weight_after,
                "iterations": result.iterations,
                "checks": result.checks,
                "seconds": round(elapsed, 4),
            }
        )
    reduction = sum(
        1 - r["weight_after"] / r["weight_before"] for r in rows
    ) / len(rows)
    return {
        "runs": rows,
        "mean_weight_reduction": round(reduction, 3),
        "total_iterations": sum(r["iterations"] for r in rows),
        "total_checks": sum(r["checks"] for r in rows),
    }


def bench_campaign(seeds):
    start = time.perf_counter()
    result = run_fuzz(seeds=seeds, jobs=1)
    elapsed = time.perf_counter() - start
    return {
        "seeds": seeds,
        "programs": result.programs,
        "checks": result.checks,
        "skips": result.skips,
        "findings": len(result.findings),
        "errors": len(result.errors),
        "seconds": round(elapsed, 3),
        "programs_per_sec": round(result.programs / elapsed, 1),
        "checks_per_sec": round(result.checks / elapsed, 1),
        "metrics_problems": validate_metrics(result.metrics),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small corpus")
    args = parser.parse_args(argv)
    n = 6 if args.smoke else 25
    campaign_seeds = 8 if args.smoke else 50

    oracles = bench_oracles(n)
    emit_table(
        "oracle cost (shared generated corpus)",
        ["oracle", "checks", "pass", "skip", "viol", "sec", "checks/s"],
        [
            (
                r["oracle"],
                r["checks"],
                r["passes"],
                r["skips"],
                r["violations"],
                r["seconds"],
                r["checks_per_sec"],
            )
            for r in oracles
        ],
    )

    shrinks = bench_shrink(n)
    emit_table(
        "shrinker cost (always-true synthetic predicate)",
        ["seed", "weight", "->", "iters", "checks", "sec"],
        [
            (
                r["seed"],
                r["weight_before"],
                r["weight_after"],
                r["iterations"],
                r["checks"],
                r["seconds"],
            )
            for r in shrinks["runs"]
        ],
    )

    campaign = bench_campaign(campaign_seeds)
    emit_table(
        "campaign throughput (all oracles, serial)",
        ["seeds", "programs", "checks", "skips", "prog/s", "checks/s"],
        [
            (
                campaign["seeds"],
                campaign["programs"],
                campaign["checks"],
                campaign["skips"],
                campaign["programs_per_sec"],
                campaign["checks_per_sec"],
            )
        ],
    )

    payload = {
        "smoke": args.smoke,
        "oracles": oracles,
        "shrink": shrinks,
        "campaign": campaign,
    }
    path = write_bench_json("fuzz", payload)
    print(f"wrote {path}")

    # Correctness gates hold in every mode.
    assert campaign["findings"] == 0, "campaign found a real violation"
    assert campaign["errors"] == 0, "campaign lost a worker"
    assert campaign["metrics_problems"] == [], campaign["metrics_problems"]
    assert shrinks["mean_weight_reduction"] >= 0.5, shrinks
    # No oracle may violate on its own: each violation here is a bug.
    for row in oracles:
        assert row["violations"] == 0, row
    return 0


def test_fuzz_bench_smoke():
    """Pytest entry point (``make bench``): the smoke-mode run."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    sys.exit(main())
