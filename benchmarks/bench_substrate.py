"""E13 — substrate calibration: the runtime and explorer themselves.

Not a paper artifact, but the credibility of every dynamic experiment
rests on the substrate, so we characterize it: interpreter step rate,
explorer state growth against cobegin width (the expected combinatorial
blow-up, and that memoization contains it for commuting actions), and
monitor overhead.
"""

import pytest

from benchmarks._util import emit_table
from repro.core.binding import StaticBinding
from repro.lang import builder as b
from repro.lang.parser import parse_statement
from repro.lattice.chain import two_level
from repro.runtime.executor import run
from repro.runtime.explorer import explore
from repro.runtime.taint import TaintMonitor

SCHEME = two_level()


def _counting_loop(iters: int):
    return parse_statement(
        f"begin i := 0; while i < {iters} do i := i + 1 end"
    )


def test_interpreter_step_rate(benchmark):
    stmt = _counting_loop(2_000)
    result = benchmark(lambda: run(_counting_loop(2_000), max_steps=100_000))
    assert result.completed
    # ~2 steps per iteration plus entry/exit.
    assert result.steps > 4_000


def test_monitor_overhead_measured(benchmark):
    binding = StaticBinding(SCHEME, {"i": "low"})

    def monitored():
        monitor = TaintMonitor.from_binding(binding, ["i"])
        return run(_counting_loop(1_000), monitor=monitor, max_steps=50_000)

    result = benchmark(monitored)
    assert result.completed


def _independent_writers(width: int):
    return b.cobegin(*[b.assign(f"w{i}", i) for i in range(width)])


def _racing_writers(width: int):
    return b.cobegin(*[b.assign("x", b.add("x", 1)) for _ in range(width)])


def test_explorer_state_growth():
    rows = []
    for width in (2, 4, 6, 8):
        indep = explore(_independent_writers(width))
        racy = explore(_racing_writers(width))
        rows.append(
            (
                width,
                indep.states_visited,
                len(indep.completed_outcomes),
                racy.states_visited,
                len(racy.completed_outcomes),
            )
        )
    emit_table(
        "E13: explorer scaling vs cobegin width",
        ["width", "indep states", "indep outcomes", "racy states", "racy outcomes"],
        rows,
    )
    # Independent writers: the state space is the 2^width subsets of
    # done-writers (plus bookkeeping), far below width! interleavings,
    # and there is exactly one final outcome.
    for width, indep_states, indep_outcomes, _, racy_outcomes in rows:
        assert indep_outcomes == 1
        assert indep_states <= 2 ** width + width + 3
        # x := x+1 races still commute to a single sum.
        assert racy_outcomes == 1


@pytest.mark.parametrize("width", [4, 6])
def test_exploration_speed(benchmark, width):
    result = benchmark(lambda: explore(_independent_writers(width)))
    assert result.complete
