"""Certifier throughput: the fused fast path against the reference.

Two experiments, emitted together as ``BENCH_cert.json``:

* **identity** — every program in the corpus run through both the
  fused engine (``repro.fastpath``) and the reference analyzers, for
  ``cert`` and ``denning`` alike.  The gate is absolute: zero
  mismatches.  The fast path's whole contract is byte-identity
  (docs/fastpath.md), so a single disagreement fails the benchmark
  regardless of how fast it went.

* **throughput** — the same corpus swept three ways: reference
  analyzers, fused with cold caches (``clear_caches`` before every
  repetition), and fused with warm caches (IR rows, per-context
  records, and the interned schemes all shared).  Each sweep is
  repeated and the best time kept, so the gates measure the engine
  rather than scheduler noise.  Full-mode gates: warm fused at least
  10x the reference, cold fused still ahead of it.

The corpus is the litmus suite (19) + the paper programs (8) + seeded
generator output in both profiles (26 seeds x 2), 79 programs total —
the same population the differential tests and the ``cert-equiv``
fuzz oracle draw from.

Run standalone (``python benchmarks/bench_cert.py [--smoke]``, wired
to ``make bench-cert`` and the CI ``cert-smoke`` job) or via pytest
(``pytest benchmarks/bench_cert.py``, smoke mode, keeping ``make
bench`` fast).
"""

import argparse
import os
import sys
import time

from benchmarks._util import emit_table, write_bench_json
from repro.fastpath import cache_stats, clear_caches, fused_cert, fused_denning
from repro.fuzz.driver import generate_subject
from repro.pipeline.analyses import (
    DEFAULT_CONFIG,
    _reference_cert,
    _reference_denning,
)
from repro.workloads.suites import corpus

# Litmus and paper programs bind h/h2 high; generated programs use
# v0.. — one config keeps the policy non-vacuous across all three.
CONFIG = dict(DEFAULT_CONFIG, high=("h", "h2", "v0"))


def build_corpus(smoke):
    subjects = [s for _, s in corpus("litmus")] + [s for _, s in corpus("paper")]
    for seed in range(4 if smoke else 26):
        for profile in ("static", "runtime_safe"):
            subjects.append(generate_subject(seed, profile))
    return subjects


def bench_identity(subjects):
    comparisons = mismatches = 0
    clear_caches()
    for subject in subjects:
        for fused, reference in (
            (fused_cert, _reference_cert),
            (fused_denning, _reference_denning),
        ):
            fast = fused(subject, CONFIG)
            assert fast is not None, "fast path declined a corpus program"
            comparisons += 1
            if fast != reference(subject, CONFIG):
                mismatches += 1
    return {
        "programs": len(subjects),
        "comparisons": comparisons,
        "mismatches": mismatches,
    }


def _sweep_reference(subjects):
    for subject in subjects:
        _reference_cert(subject, CONFIG)
        _reference_denning(subject, CONFIG)


def _sweep_fused(subjects):
    for subject in subjects:
        fused_cert(subject, CONFIG)
        fused_denning(subject, CONFIG)


def bench_throughput(subjects, repetitions):
    def best(run, prepare=None):
        times = []
        for _ in range(repetitions):
            if prepare is not None:
                prepare()
            start = time.perf_counter()
            run(subjects)
            times.append(time.perf_counter() - start)
        return min(times)

    reference = best(_sweep_reference)
    cold = best(_sweep_fused, prepare=clear_caches)
    clear_caches()
    _sweep_fused(subjects)  # populate every cache once
    warm = best(_sweep_fused)
    return {
        "programs": len(subjects),
        "repetitions": repetitions,
        "reference_seconds": reference,
        "fused_cold_seconds": cold,
        "fused_warm_seconds": warm,
        "speedup_cold": reference / cold,
        "speedup_warm": reference / warm,
        "caches": cache_stats(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small corpus")
    args = parser.parse_args(argv)
    subjects = build_corpus(args.smoke)
    repetitions = 3 if args.smoke else 5

    identity = bench_identity(subjects)
    emit_table(
        "fused/reference identity",
        ["programs", "comparisons", "mismatches"],
        [(identity["programs"], identity["comparisons"], identity["mismatches"])],
    )

    throughput = bench_throughput(subjects, repetitions)
    emit_table(
        "certifier throughput (cert + denning per program, best of "
        f"{repetitions})",
        ["path", "seconds", "speedup"],
        [
            ("reference", f"{throughput['reference_seconds']:.4f}", "1.0x"),
            (
                "fused cold",
                f"{throughput['fused_cold_seconds']:.4f}",
                f"{throughput['speedup_cold']:.1f}x",
            ),
            (
                "fused warm",
                f"{throughput['fused_warm_seconds']:.4f}",
                f"{throughput['speedup_warm']:.1f}x",
            ),
        ],
    )

    payload = {
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "identity": identity,
        "throughput": throughput,
    }
    path = write_bench_json("cert", payload)
    print(f"wrote {path}")

    # The identity gate is unconditional; an engine that answers
    # differently is wrong no matter what mode we ran in.
    assert identity["mismatches"] == 0, identity
    assert identity["comparisons"] == 2 * len(subjects)
    if not args.smoke:
        assert identity["programs"] >= 75, identity
        # Perf gates only in full mode: smoke corpora are too small to
        # time reliably on loaded CI machines.
        assert throughput["speedup_warm"] >= 10.0, throughput
        assert throughput["speedup_cold"] > 1.0, throughput
    return 0


def test_cert_bench_smoke():
    """Pytest entry point (``make bench``): the smoke-mode run."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    sys.exit(main())
