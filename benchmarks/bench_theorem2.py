"""E5 — Theorem 2 and the biconditional.

Over random (program, binding) pairs — certified or not — confirm:
cert(S) holds iff the Theorem 1 generator produces a checker-accepted
completely invariant proof, and every completely invariant proof
extracts back to a successful certification.
"""

import random

from benchmarks._util import emit_table
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.errors import GenerationError
from repro.lang.ast import used_variables
from repro.lattice.chain import two_level
from repro.logic.checker import check_proof
from repro.logic.extract import certification_from_proof
from repro.logic.generator import generate_proof
from repro.workloads.generators import random_program

SCHEME = two_level()


def _random_cases(n=40):
    cases = []
    for seed in range(n):
        prog = random_program(seed, size=28, p_cobegin=0.2, p_sem_op=0.15)
        rng = random.Random(seed ^ 0xD00D)
        names = sorted(used_variables(prog.body))
        binding = StaticBinding(
            SCHEME, {v: rng.choice(["low", "high"]) for v in names}
        )
        cases.append((prog, binding))
    return cases


def test_biconditional(benchmark):
    cases = _random_cases()

    def sweep():
        certified = proved = agreed = 0
        for prog, binding in cases:
            report = certify(prog, binding)
            if report.certified:
                certified += 1
                proof = generate_proof(prog, binding, report=report)
                assert check_proof(proof, SCHEME).ok
                assert certification_from_proof(proof, binding).certified
                proved += 1
                agreed += 1
            else:
                try:
                    generate_proof(prog, binding, report=report)
                except GenerationError:
                    agreed += 1
        return certified, proved, agreed

    certified, proved, agreed = benchmark(sweep)
    emit_table(
        "E5: CFM certification <=> completely invariant proof",
        ["random cases", "certified", "proof generated+checked", "agreement"],
        [(len(cases), certified, proved, f"{agreed}/{len(cases)}")],
    )
    assert agreed == len(cases)
    assert 0 < certified < len(cases)  # the corpus exercises both sides


def test_extraction_throughput(benchmark):
    from repro.workloads.generators import random_certified_case

    proofs = []
    for seed in range(20):
        prog, binding = random_certified_case(seed, SCHEME, size=30, n_pins=2)
        proofs.append((generate_proof(prog, binding), binding))

    def extract_all():
        return sum(
            1 for proof, binding in proofs
            if certification_from_proof(proof, binding).certified
        )

    assert benchmark(extract_all) == len(proofs)
