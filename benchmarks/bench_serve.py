"""The serve front-line under load, as one diffable artifact.

One campaign (:func:`repro.service.loadtest.run_loadtest`) against a
real ``repro serve`` subprocess, emitted as ``BENCH_serve.json``:

* **identity** — every distinct corpus request is recomputed in-driver
  with ``run_pipeline`` and the served bytes must match exactly; the
  service's byte-identity contract checked over real sockets.
* **steady state** — closed-loop clients drive the mixed corpus under
  round-robin tenants: sustained RPS, p50/p95/p99 latency, and the
  status histogram.
* **overload** — more unique-work clients than ``max_queue`` admission
  slots: the admission layer must refuse (nonzero 429s) while
  ``/healthz`` keeps answering 200 throughout.
* **service counters** — the server's own ``/metrics`` document
  (``admission``, ``tenants``, per-shard pools), schema-validated, plus
  a clean SIGTERM drain.

Every field in the artifact is measured against the live server —
nothing is hand-written.  Run standalone
(``python benchmarks/bench_serve.py [--smoke]``, wired to
``make bench-serve`` and the CI serve-smoke job) or via pytest
(``pytest benchmarks/bench_serve.py``, which uses the smoke shape).
"""

import argparse
import sys

from benchmarks._util import emit_table, write_bench_json
from repro.service.loadtest import LoadtestOptions, run_loadtest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short phases, few clients (CI per-PR mode)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--shards", type=int, default=2)
    args = parser.parse_args(argv)

    if args.smoke:
        options = LoadtestOptions(
            duration=2.0,
            clients=4,
            jobs=args.jobs,
            shards=args.shards,
            max_queue=6,
            overload_clients=12,
            overload_seconds=2.0,
            smoke=True,
        )
    else:
        options = LoadtestOptions(
            duration=10.0,
            clients=16,
            jobs=args.jobs,
            shards=args.shards,
            max_queue=16,
            overload_clients=32,
            overload_seconds=5.0,
            smoke=False,
        )
    payload = run_loadtest(options)

    steady = payload["loadtest"]
    overload = payload["overload"]
    latency = steady["latency_ms"]
    healthz = overload["healthz"]
    emit_table(
        "serve front-line loadtest",
        ["phase", "requests", "rps", "p50 ms", "p99 ms", "429s"],
        [
            (
                "steady",
                steady["requests"],
                steady["rps_sustained"],
                latency["p50"],
                latency["p99"],
                steady["statuses"].get("429", 0),
            ),
            (
                "overload",
                sum(overload["statuses"].values()),
                "-",
                "-",
                "-",
                overload["rejected_busy_429"],
            ),
        ],
    )
    emit_table(
        "healthz under overload",
        ["probes", "ok", "p99 ms"],
        [(healthz["probes"], healthz["ok"], healthz["latency_ms"]["p99"])],
    )

    path = write_bench_json("serve", payload)
    print(f"wrote {path}")

    # Correctness gates hold in every mode: the artifact must never
    # publish a trajectory the code did not actually produce.
    assert payload["identity"]["invalid_documents"] == 0, payload["identity"]
    assert steady["network_errors"] == 0, steady
    assert payload["metrics_valid"], payload["metrics_problems"]
    assert payload["clean_exit"], "server did not drain cleanly on SIGTERM"
    if args.smoke:
        return 0
    # Full-mode gates: overload must actually trip admission control
    # while the health plane stays responsive, and the steady phase
    # must demonstrate real throughput (warm-path requests are LRU
    # hits; double digits of RPS is a floor, not a goal).
    assert overload["rejected_busy_429"] > 0, overload
    assert healthz["probes"] > 0 and healthz["ok"] == healthz["probes"], (
        healthz
    )
    assert steady["rps_sustained"] >= 10, steady
    return 0


def test_serve_bench_smoke():
    """Pytest entry point (``make bench``): the smoke-mode run."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    sys.exit(main())
