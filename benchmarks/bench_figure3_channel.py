"""E3 — Figure 3: the synchronization covert channel, end to end.

Reproduces every section 4.3 claim and times each stage: static CFM
rejection, the blind Denning baseline, exhaustive interleaving
exploration (deadlock freedom, y = [x = 0]), and the looped byte pipe.
"""

import pytest

from benchmarks._util import emit_table
from repro.core.binding import StaticBinding
from repro.core.cfm import certify
from repro.core.denning import certify_denning
from repro.core.inference import infer_binding
from repro.lattice.chain import two_level
from repro.runtime.executor import run
from repro.runtime.explorer import explore
from repro.workloads.paper import figure3_looped, figure3_program

SCHEME = two_level()
NAMES = ("x", "y", "m", "modify", "modified", "read", "done")


def leaky_binding():
    return StaticBinding(SCHEME, {n: ("high" if n == "x" else "low") for n in NAMES})


def test_static_decisions(benchmark):
    prog = figure3_program()
    binding = leaky_binding()

    report = benchmark(lambda: certify(prog, binding))
    assert not report.certified

    baseline = certify_denning(prog, binding, on_concurrency="ignore")
    inferred = infer_binding(figure3_program(), SCHEME, {"x": "high"})
    emit_table(
        "E3: Figure 3 static analysis (x=high, rest low)",
        ["mechanism", "decision", "detail"],
        [
            ("Denning-Denning [3]", "CERTIFIED", "blind to synchronization flows"),
            ("CFM", "REJECTED", f"{len(report.violations)} violated checks"),
            ("CFM least binding for x=high", "y=" + str(inferred.inferred["y"]),
             "the sbind(x) <= ... <= sbind(y) chain"),
        ],
    )
    assert baseline.certified
    assert inferred.inferred["y"] == "high"


@pytest.mark.parametrize("xv", [0, 1])
def test_exhaustive_exploration(benchmark, xv):
    result = benchmark(lambda: explore(figure3_program(), store={"x": xv}))
    assert result.complete and result.deadlock_free
    assert result.final_values("y") == {1 if xv == 0 else 0}


def test_byte_pipe(benchmark):
    """The looped variant moves a byte of x into y via semaphores."""
    secret = 0b10110010

    def send():
        result = run(figure3_looped(bits=8), store={"x": secret}, max_steps=50_000)
        assert result.completed
        return result

    result = benchmark(send)
    assert result.store["y"] == secret
    emit_table(
        "E3: looped Figure 3 byte pipe",
        ["x (secret)", "y (received)", "atomic steps"],
        [(secret, result.store["y"], result.steps)],
    )


def test_dynamic_leak_witness(benchmark):
    from repro.analysis.leaks import find_leak

    witness = benchmark(
        lambda: find_leak(figure3_program(), leaky_binding(), "low", values=(0, 1))
    )
    assert witness is not None and witness.variable == "x"
