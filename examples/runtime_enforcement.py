"""Runtime enforcement vs. compile-time certification.

The paper's conclusion asks for mechanisms that work "when object
classifications can change dynamically".  This example runs the same
programs under an :class:`EnforcingMonitor` — a runtime guard that
tracks dynamic classes like the flow logic and *blocks* any action
that would push a variable over its policy bound — and contrasts it
with CFM:

* the Figure 3 channel is stopped mid-execution at the first violating
  action (the signal under the high guard);
* a compliant producer/consumer runs to completion untouched;
* the classic blind spot: an implicit flow through an *untaken* branch
  executes no action, so the monitor sees nothing — while CFM rejects
  the program statically.  (This is why the paper certifies programs
  rather than policing runs.)

Run: python examples/runtime_enforcement.py
"""

from repro import StaticBinding, certify, parse_statement, two_level
from repro.lang.ast import used_variables
from repro.runtime import EnforcingMonitor, SecurityViolation, run
from repro.workloads.paper import figure3_program


def demo_figure3() -> None:
    print("== Figure 3 under enforcement (x=high, everything else low) ==")
    scheme = two_level()
    program = figure3_program()
    names = used_variables(program.body)
    binding = StaticBinding(
        scheme, {n: ("high" if n == "x" else "low") for n in names}
    )
    monitor = EnforcingMonitor.from_binding(binding, names)
    try:
        run(program, store={"x": 0}, monitor=monitor)
        print("  (not reached)")
    except SecurityViolation as exc:
        print(f"  blocked: {exc}")
    print(f"  actions blocked so far: {len(monitor.blocked)}")


def demo_compliant() -> None:
    print("\n== a compliant pipeline runs untouched ==")
    scheme = two_level()
    stmt = parse_statement(
        "cobegin begin item := 7; signal(full) end"
        " || begin wait(full); stash := item end coend"
    )
    binding = StaticBinding(
        scheme, {"item": "high", "full": "low", "stash": "high"}
    )
    monitor = EnforcingMonitor.from_binding(binding, used_variables(stmt))
    result = run(stmt, monitor=monitor)
    print(f"  status: {result.status}, stash = {result.store['stash']}, "
          f"blocked actions: {len(monitor.blocked)}")


def demo_blind_spot() -> None:
    print("\n== the dynamic blind spot (why certification matters) ==")
    scheme = two_level()
    source = "if h = 0 then l := 1"
    binding = StaticBinding(scheme, {"h": "high", "l": "low"})

    stmt = parse_statement(source)
    monitor = EnforcingMonitor.from_binding(binding, used_variables(stmt))
    result = run(stmt, store={"h": 5}, monitor=monitor)  # branch untaken
    print(f"  h=5: run {result.status}, blocked = {len(monitor.blocked)} "
          f"-- the monitor saw nothing, yet the observer learned h != 0")

    report = certify(parse_statement(source), binding)
    print(f"  CFM verdict, computed before running anything: "
          f"{'CERTIFIED' if report.certified else 'REJECTED'}")


if __name__ == "__main__":
    demo_figure3()
    demo_compliant()
    demo_blind_spot()
