"""A covert byte pipe built only from semaphores.

The paper's closing remark on Figure 3: "by placing each process in a
loop and testing a different bit of x on each iteration an arbitrary
amount of information could be transmitted."  This script transmits a
whole ASCII message, one character per program run, purely through the
*order* of wait/signal operations — and shows that CFM statically
priced the channel correctly (sbind(x) <= sbind(y) is forced).

Run: python examples/covert_bit_pipe.py [message]
"""

import sys

from repro import two_level
from repro.core.inference import infer_binding
from repro.runtime.executor import run
from repro.runtime.scheduler import RandomScheduler
from repro.workloads.paper import figure3_looped


def transmit_byte(value: int, seed: int) -> int:
    """Send one byte through the looped Figure 3 pipe."""
    result = run(
        figure3_looped(bits=8),
        scheduler=RandomScheduler(seed),  # any schedule works
        store={"x": value},
        max_steps=100_000,
    )
    assert result.completed, result.status
    return result.store["y"]


def main() -> None:
    message = sys.argv[1] if len(sys.argv) > 1 else "SOSP79"
    print(f"transmitting {message!r} through semaphore ordering...")
    received = []
    for i, char in enumerate(message):
        byte = transmit_byte(ord(char), seed=i)
        received.append(chr(byte))
        print(f"  sent {ord(char):3d} ({char!r}) -> received {byte:3d} ({chr(byte)!r})")
    print(f"received: {''.join(received)!r}")
    assert "".join(received) == message

    print("\nand statically, CFM knew: the least binding for x=high makes")
    scheme = two_level()
    result = infer_binding(figure3_looped(bits=8), scheme, {"x": "high"})
    print(f"  sbind(y) = {result.inferred['y']!r}  "
          f"(so x=high with y=low is rejected)")
    unsat = infer_binding(figure3_looped(bits=8), scheme, {"x": "high", "y": "low"})
    print(f"  x=high, y=low satisfiable: {unsat.satisfiable}")


if __name__ == "__main__":
    main()
