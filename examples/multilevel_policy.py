"""A compartmented (military) policy over a concurrent message router.

Uses the levels x categories product lattice — (unclassified ..
topsecret) x P({nuclear, crypto}) — to classify a three-stage pipeline:
two producers at different compartments feed a router, which must
therefore sit at the *join* of its inputs.

The example then contrasts two synchronization protocols:

* unconditional signalling — the semaphores carry no classified
  information, so the low bulletin writer downstream stays unclassified;
* data-dependent signalling — the router signals only when the secret
  payload is positive, and CFM immediately forces the semaphore (and
  everything sequenced after the matching wait) up to the join class.

Run: python examples/multilevel_policy.py
"""

from repro import StaticBinding, certify, military, parse_program
from repro.core.inference import infer_binding
from repro.lattice.render import ascii_order

PIPELINE = """
var nuke_reading, crypto_key, routed, audit, bulletin : integer;
    nuke_ready, crypto_ready, routed_ready : semaphore initially(0);
cobegin
  begin nuke_reading := nuke_reading + 1; signal(nuke_ready) end
||
  begin crypto_key := crypto_key * 3; signal(crypto_ready) end
||
  begin
    wait(nuke_ready);
    wait(crypto_ready);
    routed := nuke_reading + crypto_key;
    {SIGNAL}
  end
||
  begin
    wait(routed_ready);
    audit := routed;
    bulletin := 0
  end
coend
"""

UNCONDITIONAL = PIPELINE.replace("{SIGNAL}", "signal(routed_ready)")
DATA_DEPENDENT = PIPELINE.replace(
    "{SIGNAL}", "if routed > 0 then signal(routed_ready)"
)


def main() -> None:
    scheme = military(("nuclear", "crypto"))
    print("the classification lattice (levels x categories):")
    print(ascii_order(scheme))

    secret_nuke = ("secret", frozenset({"nuclear"}))
    secret_crypto = ("secret", frozenset({"crypto"}))
    unclass = ("unclassified", frozenset())
    pins = {
        "nuke_reading": secret_nuke,
        "crypto_key": secret_crypto,
        "bulletin": unclass,
    }

    print("\n== protocol 1: unconditional signalling ==")
    result = infer_binding(parse_program(UNCONDITIONAL), scheme, pins)
    print("least classification:")
    for name, cls in sorted(result.inferred.items()):
        level, cats = cls
        print(f"  {name:13s} : ({level}, {{{','.join(sorted(cats))}}})")
    assert result.inferred["routed"] == ("secret", frozenset({"nuclear", "crypto"}))
    print("the router sits at the JOIN of both compartments, as it must;")
    print("the semaphores carry nothing, so the bulletin may stay unclassified.")

    print("\n== protocol 2: the router signals only when routed > 0 ==")
    result2 = infer_binding(parse_program(DATA_DEPENDENT), scheme, pins)
    print(f"bulletin pinned unclassified: satisfiable = {result2.satisfiable}")
    if not result2.satisfiable:
        print("violated constraints (the guard taints the semaphore, the wait")
        print("taints everything sequenced after it -- including the bulletin):")
        for edge in result2.violations[:4]:
            print(f"   {edge}")

    # And certification agrees: the same classes that certify protocol 1
    # are rejected for protocol 2.
    classes = dict(pins)
    classes.update(result.inferred)
    ok1 = certify(parse_program(UNCONDITIONAL), StaticBinding(scheme, classes))
    ok2 = certify(parse_program(DATA_DEPENDENT), StaticBinding(scheme, classes))
    print(f"\nsame binding, protocol 1: "
          f"{'CERTIFIED' if ok1.certified else 'REJECTED'}; "
          f"protocol 2: {'CERTIFIED' if ok2.certified else 'REJECTED'}")
    assert ok1.certified and not ok2.certified


if __name__ == "__main__":
    main()
