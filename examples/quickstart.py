"""Quickstart: certify a parallel program's information flows.

Run: python examples/quickstart.py
"""

from repro import StaticBinding, certify, certify_denning, parse_program, two_level
from repro.core.inference import infer_binding

# A tiny two-process program: one process decides, based on the secret
# ``h``, whether to signal; the other waits and then writes ``l``.
# No value of ``h`` is ever assigned anywhere — the information moves
# purely through synchronization.
SOURCE = """
var h, l : integer;
    go : semaphore initially(0);
cobegin
  if h # 0 then signal(go)
||
  begin wait(go); l := 1 end
coend
"""


def main() -> None:
    program = parse_program(SOURCE)
    scheme = two_level()  # the classic lattice: low < high

    # 1. Certify against "h is secret, everything else public".
    binding = StaticBinding(scheme, {"h": "high", "l": "low", "go": "low"})
    report = certify(program, binding)
    print("== CFM (this paper) ==")
    print(report.summary())

    # 2. The 1977 sequential mechanism is blind to this flow.
    baseline = certify_denning(program, binding, on_concurrency="ignore")
    print("\n== Denning & Denning 1977, naively applied ==")
    print(baseline.summary())

    # 3. Ask the library for the least restrictive classification that
    #    makes the program safe.
    result = infer_binding(program, scheme, {"h": "high"})
    print("\n== least binding completion for h=high ==")
    print(result.explain())


if __name__ == "__main__":
    main()
