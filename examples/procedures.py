"""Procedures and modular certification.

The paper's language has no procedures, but Denning & Denning's
original mechanism handled procedure calls; the library supports them
as a marked extension with call-by-value/result semantics and
certification by sound inline expansion (see ``repro.lang.procs``).

The scenario: a tiny "password check" service.  A checker procedure
compares a stored secret against an attempt and returns a boolean-ish
flag.  Even though the flag is one bit, certification correctly insists
it carries the secret's class — and inference shows exactly which
declassification the designer would be signing up for.

Run: python examples/procedures.py
"""

from repro import StaticBinding, certify, parse_program, pretty, two_level
from repro.core.inference import infer_binding
from repro.lang.procs import expand_program
from repro.runtime.executor import run

SOURCE = """
proc check(in stored, attempt; out ok)
  if stored = attempt then ok := 1 else ok := 0;

proc throttle(in tries; out allowed)
  if tries < 3 then allowed := 1 else allowed := 0;

var secret, guess, tries, granted, may_try : integer;
begin
  call throttle(tries; may_try);
  if may_try = 1
  then begin
    call check(secret, guess; granted);
    tries := tries + 1
  end
end
"""


def main() -> None:
    scheme = two_level()
    program = parse_program(SOURCE)
    print(pretty(program))

    print("\n== what the expansion looks like (first lines) ==")
    expanded = pretty(expand_program(parse_program(SOURCE)))
    for line in expanded.splitlines()[:12]:
        print("  " + line)
    print("  ...")

    print("\n== certification ==")
    binding = StaticBinding(
        scheme,
        {"secret": "high", "guess": "low", "tries": "low",
         "granted": "low", "may_try": "low"},
    )
    report = certify(parse_program(SOURCE), binding)
    print(f"granted bound low: {'CERTIFIED' if report.certified else 'REJECTED'}"
          f" -- the one-bit result still carries the secret's class")

    inferred = infer_binding(parse_program(SOURCE), scheme, {"secret": "high"})
    print("\nleast classes with secret=high:")
    for name, cls in sorted(inferred.inferred.items()):
        if "_" not in name:  # skip activation temporaries
            print(f"  {name:8s} : {cls}")
    print("(the throttle counter stays low: it never touches the secret)")

    print("\n== behaviour ==")
    for guess in (41, 42):
        result = run(parse_program(SOURCE), store={"secret": 42, "guess": guess})
        print(f"  guess={guess}: granted={result.store['granted']}")


if __name__ == "__main__":
    main()
