"""The paper's Figure 3, end to end.

A three-process program that copies the zero-ness of a high variable
``x`` into a low variable ``y`` without ever assigning anything derived
from ``x`` — the order of semaphore operations *is* the message.

The script shows: the program text; CFM rejecting the leaky binding
with the exact sbind(x) <= ... <= sbind(y) chain from section 4.3; the
Denning baseline missing it; exhaustive exploration proving deadlock
freedom and y = [x = 0] under every schedule; and the dynamic label
monitor watching the taint arrive in y.

Run: python examples/synchronization_channel.py
"""

from repro import StaticBinding, certify, certify_denning, pretty, two_level
from repro.analysis.flowgraph import flow_graph
from repro.lang.ast import used_variables
from repro.runtime.explorer import explore
from repro.runtime.executor import run
from repro.runtime.taint import TaintMonitor
from repro.workloads.paper import figure3_program


def main() -> None:
    scheme = two_level()
    program = figure3_program()
    print(pretty(program))

    names = sorted(used_variables(program.body))
    leaky = StaticBinding(
        scheme, {n: ("high" if n == "x" else "low") for n in names}
    )

    print("\n== static analysis: x=high, everything else low ==")
    report = certify(program, leaky)
    print(f"CFM: {'CERTIFIED' if report.certified else 'REJECTED'} "
          f"({len(report.violations)} violated checks)")
    for violation in report.violations[:3]:
        print("   ", violation)
    baseline = certify_denning(program, leaky, on_concurrency="ignore")
    print(f"Denning & Denning (1977): "
          f"{'CERTIFIED' if baseline.certified else 'REJECTED'} "
          f"-- blind to synchronization flows")

    print("\n== the flow chain (section 4.3) ==")
    graph = flow_graph(program, scheme)
    for a, b in [("x", "modify"), ("modify", "m"), ("m", "y")]:
        print(f"  sbind({a}) <= sbind({b}):",
              "required" if graph.can_flow(a, b) else "not required")

    print("\n== every interleaving, both secrets ==")
    for xv in (0, 5):
        result = explore(figure3_program(), store={"x": xv})
        print(
            f"  x={xv}: {result.states_visited} states, "
            f"deadlock-free={result.deadlock_free}, "
            f"y always = {sorted(result.final_values('y'))}"
        )

    print("\n== dynamic label tracking ==")
    program2 = figure3_program()
    monitor = TaintMonitor.from_binding(leaky, used_variables(program2.body))
    run(program2, store={"x": 0}, monitor=monitor)
    print(f"  after one run, class(y) = {monitor.state.cls('y')!r} "
          f"(bound was {leaky.of_var('y')!r})")
    for name, current, bound in monitor.violations(leaky):
        print(f"  policy violation: class({name}) = {current!r} > {bound!r}")


if __name__ == "__main__":
    main()
