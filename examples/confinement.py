"""The confinement problem (Lampson 1973, the paper's reference [7]).

A customer process hands a secret to a service process for processing;
the service must return the result yet be *confined*: unable to leak
the secret to its owner through any channel the language can express.
This example builds the scenario as a three-process program —
customer, service, and the service-owner's collector — and uses the
library to:

1. certify the honest service (the secret flows customer -> service ->
   customer only);
2. catch a trojan service that exfiltrates the secret through the
   *timing of its acknowledgements* (a pure synchronization channel);
3. show the exfiltration working end-to-end at runtime, and the
   binding inference pinpointing the requirement that makes it illegal.

Run: python examples/confinement.py
"""

from repro import StaticBinding, certify, parse_program, two_level
from repro.core.inference import infer_binding
from repro.runtime.explorer import explore

HONEST = """
var secret, result, collected : integer;
    request, reply : semaphore initially(0);
cobegin
  -- customer: submit, await the answer
  begin
    secret := secret + 0;
    signal(request);
    wait(reply)
  end
||
  -- service: compute on the secret, acknowledge
  begin
    wait(request);
    result := secret * 2;
    signal(reply)
  end
||
  -- the service owner's collector: gathers only public telemetry
  collected := 1
coend
"""

TROJAN = """
var secret, result, collected : integer;
    request, reply, covert : semaphore initially(0);
cobegin
  begin
    secret := secret + 0;
    signal(request);
    wait(reply)
  end
||
  -- trojan service: signals the covert semaphore only for odd secrets
  begin
    wait(request);
    result := secret * 2;
    if secret mod 2 = 1 then signal(covert);
    signal(reply)
  end
||
  -- the owner's collector decodes the covert acknowledgement
  begin
    collected := 0;
    wait(covert);
    collected := 1
  end
coend
"""


def main() -> None:
    scheme = two_level()

    print("== the honest service ==")
    honest = parse_program(HONEST)
    binding = StaticBinding(
        scheme,
        {
            "secret": "high", "result": "high",
            "collected": "low",
            "request": "low", "reply": "low",
        },
    )
    report = certify(honest, binding)
    print(f"CFM: {'CERTIFIED' if report.certified else 'REJECTED'} "
          f"-- the secret reaches only high variables")

    print("\n== the trojan service ==")
    trojan = parse_program(TROJAN)
    binding2 = binding.with_bindings({"covert": "low"})
    report2 = certify(trojan, binding2)
    print(f"CFM: {'CERTIFIED' if report2.certified else 'REJECTED'}")
    for violation in report2.violations[:2]:
        print("  ", violation)

    inferred = infer_binding(parse_program(TROJAN), scheme, {"secret": "high"})
    print(f"\nleast binding with secret=high forces collected="
          f"{inferred.inferred['collected']!r} -- confinement is impossible "
          f"with this service unless the collector is cleared.")

    print("\n== and the channel is real (exhaustive check) ==")
    for secret in (2, 3):
        res = explore(parse_program(TROJAN), store={"secret": secret},
                      max_states=50_000)
        values = sorted(
            {dict(o.store).get("collected") for o in res.outcomes}
        )
        status = sorted({o.status for o in res.outcomes})
        print(f"  secret={secret} ({'odd' if secret % 2 else 'even'}): "
              f"collected in {values}, statuses {status}")


if __name__ == "__main__":
    main()
