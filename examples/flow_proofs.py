"""Flow proofs: Theorem 1's generator and the section 5.2 gap.

Part 1 - for a certified concurrent program, build the completely
invariant flow proof Theorem 1 promises, verify it with the independent
checker, and render it.

Part 2 - the paper's section 5.2 example: ``begin x := 0; y := x end``
with x=high, y=low is *safe* (the value copied is the constant 0) and
the flow logic proves it, but CFM rejects it — the logic is strictly
stronger than the mechanism.

Run: python examples/flow_proofs.py
"""

from repro import StaticBinding, parse_statement, two_level
from repro.core.cfm import certify
from repro.lattice.extended import ExtendedLattice
from repro.logic.assertions import Bound, FlowAssertion, vlg_assertion
from repro.logic.checker import action_substitution, check_proof
from repro.logic.classexpr import const_expr, var_class
from repro.logic.extract import is_completely_invariant
from repro.logic.generator import generate_proof
from repro.logic.proof import ProofNode
from repro.logic.render import render_proof

SCHEME = two_level()
EXT = ExtendedLattice(SCHEME)


def part1_theorem1() -> None:
    print("== Part 1: Theorem 1 on a certified concurrent program ==")
    stmt = parse_statement(
        """
        begin
          x := secret;
          cobegin
            begin signal(ready); log := 1 end
          ||
            begin wait(ready); sink := x end
          coend
        end
        """
    )
    binding = StaticBinding(
        SCHEME,
        {"secret": "high", "x": "high", "sink": "high",
         "ready": "low", "log": "low"},
    )
    report = certify(stmt, binding)
    print(f"cert(S) = {report.certified}")
    proof = generate_proof(stmt, binding, report=report)
    checked = check_proof(proof, SCHEME)
    print(f"generated {proof.size()} rule applications; "
          f"independent check: {'VALID' if checked.ok else 'INVALID'}")
    print(f"completely invariant (Definition 7): "
          f"{is_completely_invariant(proof, binding)}")
    print()
    print(render_proof(proof))


def part2_section52() -> None:
    print("\n== Part 2: the section 5.2 gap ==")
    stmt = parse_statement("begin x := 0; y := x end")
    binding = StaticBinding(SCHEME, {"x": "high", "y": "low"})
    report = certify(stmt, binding)
    print(f"CFM verdict for x=high, y=low: "
          f"{'CERTIFIED' if report.certified else 'REJECTED'}")

    # The paper's hand proof: after x := 0, x's *current* class is low,
    # so y := x moves only low information.
    low = const_expr("low")

    def state(x_bound):
        v = FlowAssertion(
            [Bound(var_class("x"), const_expr(x_bound)),
             Bound(var_class("y"), low)]
        )
        return vlg_assertion(v, low, low)

    a1, a2, a3 = state("high"), state("low"), state("low")
    first, second = stmt.body
    ax1 = ProofNode(
        "assignment", first,
        a2.substitute(action_substitution(first, SCHEME), EXT), a2,
    )
    ax2 = ProofNode(
        "assignment", second,
        a3.substitute(action_substitution(second, SCHEME), EXT), a3,
    )
    proof = ProofNode(
        "composition", stmt, a1, a3,
        [ProofNode("consequence", first, a1, a2, [ax1]),
         ProofNode("consequence", second, a2, a3, [ax2])],
    )
    checked = check_proof(proof, SCHEME)
    print(f"hand flow proof of the policy: "
          f"{'VALID' if checked.ok else 'INVALID'}")
    print(f"completely invariant: {is_completely_invariant(proof, binding)} "
          f"(it strengthens the policy mid-proof, which is exactly\n"
          f"  what CFM cannot do -- Theorem 2's boundary)")
    print()
    print(render_proof(proof))


if __name__ == "__main__":
    part1_theorem1()
    part2_section52()
